"""repro devtools — project-native static analysis.

An AST-based invariant linter for the invariants general-purpose tools
cannot know: ``ParseOptions``-only internal calls (REP001), telemetry
naming + documentation (REP002), determinism of the byte-identical
modules (REP003), picklable pool workers (REP004), the typed
:mod:`repro.errors` hierarchy (REP005), public-API drift (REP006),
mutable defaults (REP007), serving-layer isolation (REP008), and the
concurrency contracts — ``guarded-by`` lock discipline (REP009),
non-blocking async bodies (REP010), an acyclic lock-order graph
(REP011), and bounded queues with backpressure (REP012).  The static
rules' runtime twin, an opt-in instrumented-lock sanitizer, lives in
:mod:`repro.devtools.sanitizer` (``REPRO_TSAN=1`` / ``pytest
--repro-tsan``).

Run it as ``repro-weather check`` (exit 0 clean / 1 findings /
2 internal error), or programmatically::

    from repro.devtools import default_config, run_checks

    result = run_checks(default_config())
    assert result.ok, [f.message for f in result.findings]

``scripts/run_static_analysis.py`` aggregates this linter with ``ruff``
and ``mypy`` (when installed) and the ``# type: ignore`` budget; the
rule catalogue lives in ``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.devtools.engine import (
    CheckConfig,
    CheckResult,
    Finding,
    Rule,
    SourceModule,
    default_config,
    discover_root,
    render_human,
    render_json,
    run_checks,
)

__all__ = [
    "CheckConfig",
    "CheckResult",
    "Finding",
    "Rule",
    "SourceModule",
    "default_config",
    "discover_root",
    "render_human",
    "render_json",
    "run_checks",
]
