"""Diurnal link-load model.

Reproduces the load behaviours of Figure 5:

* the median load "follows a sinusoidal form over the day, reaching its
  lowest point between 2 and 4 a.m. and its highest point between 7 and
  9 p.m." — an asymmetric day cycle with a 3 a.m. trough and 8 p.m. peak;
* "when the network is more loaded, the variance of the distribution of
  loads increases" — the per-sample noise is multiplicative;
* external links load lower than internal ones on average — separate base
  means per category;
* parallel links balance tightly (delegated to :mod:`repro.simulation.ecmp`).

After a group gains links, per-link load is *diluted* by the old/new size
ratio and recovers over several weeks — the mechanism behind the Figure 6
upgrade signature, applied uniformly to every group.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.rng import stable_uniform, substream
from repro.simulation.config import SimulationConfig, TrafficProfile
from repro.simulation.ecmp import persistent_skew, spread_demand
from repro.simulation.evolution import FOREVER, GroupSpec, LinkSpec

#: Default recovery span after a capacity addition (see
#: :attr:`~repro.simulation.config.TrafficProfile.dilution_recovery_days`).
DILUTION_RECOVERY = timedelta(days=75)

#: Loads are printed as integer percentages on the weathermap.
def quantize(load: float) -> int:
    """Round a load to the integer percentage shown on the map."""
    return min(100, max(0, int(round(load))))


def diurnal_factor(when: datetime, amplitude: float, peak_hour: float = 20.0, trough_hour: float = 3.0) -> float:
    """Asymmetric day-cycle multiplier: trough at 3 a.m., peak at 8 p.m.

    The hour axis is warped so a half cosine spans trough→peak (17 h) and
    the other half spans peak→trough (7 h), then mapped to
    ``1 ± amplitude``.
    """
    hour = when.hour + when.minute / 60.0 + when.second / 3600.0
    rising_span = (peak_hour - trough_hour) % 24.0
    since_trough = (hour - trough_hour) % 24.0
    if since_trough <= rising_span:
        phase = math.pi * since_trough / rising_span
    else:
        phase = math.pi * (1.0 + (since_trough - rising_span) / (24.0 - rising_span))
    return 1.0 - amplitude * math.cos(phase)


def weekly_factor(when: datetime, amplitude: float) -> float:
    """Weekends run slightly quieter than weekdays."""
    if when.weekday() >= 5:
        return 1.0 - amplitude
    return 1.0 + amplitude / 2.0


@dataclass(frozen=True, slots=True)
class _GroupTraffic:
    """Cached per-group traffic state.

    Demand-shaping state (base loads, idle/skewed flags) is keyed by the
    *canonical node pair*, not the group id: all parallel links between
    two nodes share one traffic aggregate under ECMP, even when the
    generator created them as separate groups.  ``base_loads`` and the
    skew are indexed by canonical direction (0 = from the
    lexicographically smaller node).
    """

    pair_key: str
    #: Maps this group's local direction (0 = group.a → group.b) to the
    #: canonical direction.
    direction_map: tuple[int, int]
    base_loads: tuple[float, float]
    idle: bool
    skewed: bool
    disabled: tuple[bool, ...]
    size_events: tuple[tuple[datetime, int], ...]


class TrafficModel:
    """Deterministic load generator for one map's parallel-link groups."""

    def __init__(self, config: SimulationConfig, map_name_value: str, upgrade_group_id: str | None = None, upgrade_base_load: float | None = None) -> None:
        self._config = config
        self._profile: TrafficProfile = config.traffic
        self._map = map_name_value
        self._upgrade_group_id = upgrade_group_id
        self._upgrade_base_load = upgrade_base_load
        self._cache: dict[str, _GroupTraffic] = {}

    # ------------------------------------------------------------------
    # Per-group state
    # ------------------------------------------------------------------

    def _base_load(self, group: GroupSpec, pair_key: str, canonical_direction: int) -> float:
        """Stable per-direction base load draw (lognormal around the mean)."""
        profile = self._profile
        mean = profile.external_mean_load if group.external else profile.internal_mean_load
        rng = substream("base-load", self._config.seed, pair_key, canonical_direction)
        # Lognormal with the configured median; sigma controls dispersion.
        draw = mean * math.exp(rng.gauss(0.0, profile.base_load_sigma))
        return min(88.0, max(1.5, draw))

    def _size_events(self, group: GroupSpec) -> tuple[tuple[datetime, int], ...]:
        """Active-link count over time: (instant, count) change points."""
        deltas: dict[datetime, int] = {}
        for link in group.links:
            deltas[link.active_from] = deltas.get(link.active_from, 0) + 1
            if link.lifetime.death != FOREVER:
                deltas[link.lifetime.death] = deltas.get(link.lifetime.death, 0) - 1
        events: list[tuple[datetime, int]] = []
        count = 0
        for when in sorted(deltas):
            count += deltas[when]
            events.append((when, count))
        return tuple(events)

    def _group_state(self, group: GroupSpec) -> _GroupTraffic:
        """Build (or fetch) the cached stable state of one group."""
        state = self._cache.get(group.group_id)
        if state is not None:
            return state
        profile = self._profile
        seed = self._config.seed
        low, high = sorted((group.a, group.b))
        pair_key = f"{low}|{high}"
        # Local direction 0 is group.a → group.b; canonical direction 0
        # always leaves the lexicographically smaller node.
        direction_map = (0, 1) if group.a == low else (1, 0)
        if group.group_id == self._upgrade_group_id and self._upgrade_base_load is not None:
            base_a = base_b = self._upgrade_base_load
            idle = False
            skewed = False
            disabled = tuple(False for _ in group.links)
        else:
            base_a = self._base_load(group, pair_key, 0)
            base_b = self._base_load(group, pair_key, 1)
            idle = stable_uniform("idle", seed, pair_key) < profile.idle_group_fraction
            skewed = (
                stable_uniform("skewed", seed, pair_key)
                < profile.skewed_group_fraction
            )
            disabled = tuple(
                group.size > 1
                and stable_uniform("disabled", seed, link.link_id)
                < profile.disabled_link_fraction
                for link in group.links
            )
        state = _GroupTraffic(
            pair_key=pair_key,
            direction_map=direction_map,
            base_loads=(base_a, base_b),
            idle=idle,
            skewed=skewed,
            disabled=disabled,
            size_events=self._size_events(group),
        )
        self._cache[group.group_id] = state
        return state

    # ------------------------------------------------------------------
    # Time-dependent factors
    # ------------------------------------------------------------------

    def _dilution(self, events: tuple[tuple[datetime, int], ...], when: datetime) -> float:
        """Per-link demand multiplier after the latest group-size change.

        Right after a growth from ``n_old`` to ``n_new`` links, per-link
        load drops by ``n_old / n_new`` (total demand is conserved), then
        recovers linearly over the profile's recovery span as demand
        catches up with the new capacity.
        """
        recovery_days = self._profile.dilution_recovery_days
        if recovery_days <= 0:
            return 1.0
        recovery = timedelta(days=recovery_days)
        previous_count: int | None = None
        change_at: datetime | None = None
        old_count = 0
        for event_time, count in events:
            if event_time > when:
                break
            if previous_count is not None and count != previous_count:
                change_at = event_time
                old_count = previous_count
            previous_count = count
        if change_at is None or previous_count is None or previous_count <= 0 or old_count <= 0:
            return 1.0
        ratio = old_count / previous_count
        elapsed = when - change_at
        if elapsed >= recovery:
            return 1.0
        progress = elapsed / recovery
        return ratio + (1.0 - ratio) * progress

    def _demand(self, group: GroupSpec, state: _GroupTraffic, direction: int, when: datetime) -> float:
        """Per-active-link demand for one direction at one instant."""
        profile = self._profile
        if state.idle:
            return 1.0
        canonical = state.direction_map[direction]
        base = state.base_loads[canonical]
        factor = diurnal_factor(when, profile.diurnal_amplitude, profile.peak_hour)
        factor *= weekly_factor(when, profile.weekly_amplitude)
        # Temporally correlated noise: a slow per-day component (traffic
        # level varies across days) plus a small per-sample component.
        # Purely white per-sample noise would bury step changes like the
        # Figure 6 activation under day-to-day jitter.  Keyed by the node
        # pair so same-pair groups fluctuate together (one ECMP aggregate).
        day_rng = substream(
            "load-noise-day",
            self._config.seed,
            state.pair_key,
            canonical,
            when.date().isoformat(),
        )
        sample_rng = substream(
            "load-noise", self._config.seed, state.pair_key, canonical, when
        )
        factor *= math.exp(
            day_rng.gauss(0.0, 0.6 * profile.noise_sigma)
            + sample_rng.gauss(0.0, 0.5 * profile.noise_sigma)
        )
        factor *= self._dilution(state.size_events, when)
        return base * factor

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def group_loads(
        self, group: GroupSpec, alive_links: list[LinkSpec], when: datetime
    ) -> dict[str, tuple[int, int]]:
        """Integer (a→b, b→a) loads for each alive link of the group."""
        state = self._group_state(group)
        profile = self._profile
        alive_ids = {link.link_id for link in alive_links}
        members = [link for link in group.links if link.link_id in alive_ids]
        if not members:
            return {}

        jitter = (
            profile.external_ecmp_jitter if group.external else profile.internal_ecmp_jitter
        )
        index_of = {link.link_id: position for position, link in enumerate(group.links)}
        active = [
            link.active_from <= when and not state.disabled[index_of[link.link_id]]
            for link in members
        ]

        result: dict[str, tuple[int, int]] = {}
        per_direction: list[list[float]] = []
        for direction in range(2):
            demand = self._demand(group, state, direction, when)
            skew = None
            if state.skewed:
                skew = persistent_skew(
                    len(members),
                    profile.skewed_extra_jitter,
                    self._config.seed,
                    group.group_id,
                    direction,
                )
            loads = spread_demand(
                demand,
                active,
                jitter,
                skew,
                self._config.seed,
                group.group_id,
                direction,
                when,
            )
            per_direction.append(loads)
        for position, link in enumerate(members):
            result[link.link_id] = (
                quantize(per_direction[0][position]),
                quantize(per_direction[1][position]),
            )
        return result
