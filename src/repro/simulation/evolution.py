"""Structural evolution of one backbone map.

Every map element — router, peering, link — gets a deterministic *lifetime*
(birth, optional death, optional outage windows).  The topology at any
instant is the set of elements alive then, which gives the simulator three
properties the reproduction needs:

* **Exact calibration** — elements alive on the reference date are generated
  to match the paper's Table 1 counts exactly;
* **Scripted narratives** — the Figure 4a events (make-before-break router
  swaps, removals, maintenance dips) are lifetimes chosen to replay the
  paper's Europe-map story;
* **O(log n) counting** — router/link counts over time (Figures 4a/4b) come
  from sorted birth/death event arrays, no per-snapshot materialisation.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone

from repro.constants import MapName
from repro.errors import SimulationError
from repro.rng import substream
from repro.simulation.config import MapProfile, SharedRouters, SimulationConfig
from repro.simulation.events import UpgradeScenario
from repro.topology.names import NameGenerator

#: Sentinel "end of time" used for elements that never die.
FOREVER = datetime.max.replace(tzinfo=timezone.utc)


@dataclass(frozen=True, slots=True)
class Lifetime:
    """When an element exists on the map."""

    birth: datetime
    death: datetime = FOREVER
    outages: tuple[tuple[datetime, datetime], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.death <= self.birth:
            raise SimulationError("element dies before it is born")
        for start, end in self.outages:
            if end <= start:
                raise SimulationError("outage window is empty")

    def alive_at(self, when: datetime) -> bool:
        """Whether the element is on the map at ``when``."""
        if not self.birth <= when < self.death:
            return False
        return not any(start <= when < end for start, end in self.outages)

    def intervals(self) -> list[tuple[datetime, datetime]]:
        """Maximal presence intervals, outages subtracted."""
        spans = [(self.birth, self.death)]
        for outage_start, outage_end in sorted(self.outages):
            next_spans: list[tuple[datetime, datetime]] = []
            for start, end in spans:
                if outage_end <= start or end <= outage_start:
                    next_spans.append((start, end))
                    continue
                if start < outage_start:
                    next_spans.append((start, outage_start))
                if outage_end < end:
                    next_spans.append((outage_end, end))
            spans = next_spans
        return spans

    def intersect(self, other: Lifetime) -> list[tuple[datetime, datetime]]:
        """Presence intervals common to two lifetimes."""
        result: list[tuple[datetime, datetime]] = []
        for a_start, a_end in self.intervals():
            for b_start, b_end in other.intervals():
                start = max(a_start, b_start)
                end = min(a_end, b_end)
                if start < end:
                    result.append((start, end))
        return sorted(result)


class RouterRole:
    """Structural roles a router can play in the generated backbone."""

    CORE = "core"
    EDGE = "edge"
    STUB = "stub"


@dataclass(frozen=True, slots=True)
class RouterSpec:
    """One router's identity and lifetime on this map."""

    name: str
    site: str
    role: str
    lifetime: Lifetime
    borrowed: bool = False


@dataclass(frozen=True, slots=True)
class PeeringSpec:
    """One physical peering box and its lifetime."""

    name: str
    lifetime: Lifetime


@dataclass(frozen=True, slots=True)
class LinkSpec:
    """One physical link: endpoints, end labels, lifetime, activation.

    ``activation`` is when the link starts carrying traffic; between birth
    and activation it shows on the map at 0 % — the Figure 6 pattern where
    the new AMS-IX link "was first added, but not yet used".
    """

    link_id: str
    group_id: str
    a: str
    b: str
    label_a: str
    label_b: str
    external: bool
    lifetime: Lifetime
    activation: datetime | None = None

    @property
    def active_from(self) -> datetime:
        """First instant the link may carry traffic."""
        return self.activation if self.activation is not None else self.lifetime.birth


@dataclass(frozen=True, slots=True)
class GroupSpec:
    """A parallel-link group: every link between one pair of nodes."""

    group_id: str
    a: str
    b: str
    external: bool
    links: tuple[LinkSpec, ...]
    #: True when this group also appears on another map (shared gateway
    #: links); Table 1's total row counts such links once.
    shared: bool = False

    @property
    def size(self) -> int:
        return len(self.links)


@dataclass(frozen=True, slots=True)
class BorrowedBundle:
    """What a borrowing map receives from an owner map: the shared
    gateway routers and the link groups among them to mirror."""

    owner: MapName
    routers: tuple[tuple[str, str], ...]  # (name, site)
    groups: tuple[GroupSpec, ...]

    @property
    def link_count(self) -> int:
        return sum(group.size for group in self.groups)


class _EventCounter:
    """Counts alive elements at any instant from presence intervals."""

    def __init__(self, intervals: list[tuple[datetime, datetime]]) -> None:
        events: list[tuple[datetime, int]] = []
        for start, end in intervals:
            events.append((start, 1))
            if end != FOREVER:
                events.append((end, -1))
        events.sort(key=lambda item: item[0])
        self._times: list[datetime] = []
        self._counts: list[int] = []
        running = 0
        for time, delta in events:
            running += delta
            if self._times and self._times[-1] == time:
                self._counts[-1] = running
            else:
                self._times.append(time)
                self._counts.append(running)

    def count_at(self, when: datetime) -> int:
        """Number of elements alive at ``when``."""
        index = bisect.bisect_right(self._times, when) - 1
        if index < 0:
            return 0
        return self._counts[index]


class MapEvolution:
    """The full structural history of one backbone map."""

    def __init__(
        self,
        map_name: MapName,
        profile: MapProfile,
        config: SimulationConfig,
        borrowed_bundles: list[BorrowedBundle] | None = None,
        lend_plans: list[SharedRouters] | None = None,
        upgrade: UpgradeScenario | None = None,
    ) -> None:
        """Generate the map's history.

        Args:
            map_name: which backbone map this is.
            profile: structural targets and scripted events.
            config: global window and seed.
            borrowed_bundles: gateway routers (and the link groups among
                them) owned by other maps but also shown on this one; both
                count toward this map's Table 1 row but de-duplicate in
                the total row.
            lend_plans: sharing relations this map *owns*: it designates
                the gateway routers and builds the shared groups that
                borrowing maps will mirror.
            upgrade: optional scripted link-upgrade scenario; the peering
                group it describes is reserved before procedural generation.
        """
        self.map_name = map_name
        self.profile = profile
        self.config = config
        self.upgrade = upgrade if upgrade is not None and upgrade.map_name == map_name else None
        self.upgrade_group_id: str | None = None
        self._rng = substream("evolution", config.seed, map_name.value)
        self._names = NameGenerator(map_name, seed=config.seed)
        self._link_counter = itertools.count(1)
        self._bundles = list(borrowed_bundles or [])
        self._borrowed = [router for bundle in self._bundles for router in bundle.routers]
        self._lend_plans = list(lend_plans or [])
        self._lent: dict[MapName, BorrowedBundle] = {}

        self.routers: list[RouterSpec] = []
        self.extra_routers: list[RouterSpec] = []
        self.peerings: list[PeeringSpec] = []
        self.groups: list[GroupSpec] = []

        self._build_routers()
        mirrored_links = 0
        for bundle in self._bundles:
            self.groups.extend(bundle.groups)
            mirrored_links += bundle.link_count
        owned_shared_links = self._build_lend_groups()
        self._shared_internal_links = mirrored_links + owned_shared_links
        self._build_internal_groups()
        self._build_external_groups()
        self._build_extra_router_links()

        self._router_specs = {spec.name: spec for spec in self.all_routers}
        self._router_counter = _EventCounter(
            [span for spec in self.all_routers for span in spec.lifetime.intervals()]
        )
        self._internal_counter = self._link_counter_for(external=False)
        self._external_counter = self._link_counter_for(external=True)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @property
    def all_routers(self) -> list[RouterSpec]:
        """Reference-roster routers plus extras that die before reference."""
        return self.routers + self.extra_routers

    @property
    def all_links(self) -> list[LinkSpec]:
        """Every link spec across all groups."""
        return [link for group in self.groups for link in group.links]

    def _random_date(self, start: datetime, end: datetime) -> datetime:
        """Uniform timestamp in [start, end), snapped to 5-minute ticks."""
        span = (end - start).total_seconds()
        offset = self._rng.random() * span
        snapped = int(offset // 300) * 300
        return start + timedelta(seconds=snapped)

    def _build_routers(self) -> None:
        """Generate the reference-date router roster and the extra routers
        whose scripted removal produces the Figure 4a dips."""
        profile = self.profile
        config = self.config
        target_routers = profile.reference_counts[0]
        if len(self._borrowed) > target_routers:
            raise SimulationError("more borrowed routers than the map's target")

        stub_count = int(round(profile.stub_fraction * target_routers))
        sites = [f"site{index:02d}" for index in range(profile.core_sites)]

        rosters: list[RouterSpec] = []
        for name, site in self._borrowed:
            rosters.append(
                RouterSpec(
                    name=name,
                    site=site,
                    role=RouterRole.CORE,
                    lifetime=Lifetime(birth=config.window_start),
                    borrowed=True,
                )
            )

        fresh_needed = target_routers - len(self._borrowed)
        core_budget = max(0, min(2 * profile.core_sites - len(self._borrowed), fresh_needed - stub_count))
        edge_budget = fresh_needed - stub_count - core_budget
        if edge_budget < 0:
            stub_count += edge_budget
            edge_budget = 0

        roles = (
            [RouterRole.CORE] * core_budget
            + [RouterRole.EDGE] * edge_budget
            + [RouterRole.STUB] * stub_count
        )
        for index, role in enumerate(roles):
            site = sites[index % len(sites)]
            rosters.append(
                RouterSpec(
                    name=self._names.router_name(),
                    site=site,
                    role=role,
                    lifetime=Lifetime(birth=config.window_start),
                )
            )

        # Late births: scripted swap additions first, then procedural growth.
        late_birth_budget = int(round((1 - profile.initial_router_fraction) * target_routers))
        swap_additions = sum(event.add_count for event in profile.router_swaps)
        late_birth_budget = max(late_birth_budget, swap_additions)

        mutable = list(rosters)
        candidates = [
            index
            for index, spec in enumerate(mutable)
            if not spec.borrowed and spec.role != RouterRole.CORE
        ]
        self._rng.shuffle(candidates)

        cursor = 0
        for event in profile.router_swaps:
            for _ in range(event.add_count):
                if cursor >= len(candidates):
                    break
                index = candidates[cursor]
                cursor += 1
                spec = mutable[index]
                mutable[index] = RouterSpec(
                    name=spec.name,
                    site=spec.site,
                    role=spec.role,
                    lifetime=Lifetime(birth=self._random_date(event.add_start, event.add_end)),
                )
        for _ in range(late_birth_budget - swap_additions):
            if cursor >= len(candidates):
                break
            index = candidates[cursor]
            cursor += 1
            spec = mutable[index]
            birth = self._random_date(config.window_start + timedelta(days=30), config.window_end - timedelta(days=30))
            mutable[index] = RouterSpec(
                name=spec.name, site=spec.site, role=spec.role, lifetime=Lifetime(birth=birth)
            )

        # Scripted maintenance outages on long-lived edge routers.
        outage_pool = [
            index
            for index, spec in enumerate(mutable)
            if not spec.borrowed
            and spec.role == RouterRole.EDGE
            and spec.lifetime.birth == config.window_start
        ]
        self._rng.shuffle(outage_pool)
        pool_cursor = 0
        for outage in self.profile.outages:
            for _ in range(outage.router_count):
                if pool_cursor >= len(outage_pool):
                    break
                index = outage_pool[pool_cursor]
                pool_cursor += 1
                spec = mutable[index]
                mutable[index] = RouterSpec(
                    name=spec.name,
                    site=spec.site,
                    role=spec.role,
                    lifetime=Lifetime(
                        birth=spec.lifetime.birth,
                        outages=((outage.start, outage.start + outage.duration),),
                    ),
                )

        self.routers = mutable

        # Extra routers: alive from the start, removed at scripted dates.
        extras: list[RouterSpec] = []
        removal_plan: list[datetime] = []
        for event in profile.router_swaps:
            removal_plan.extend([event.remove_at] * event.remove_count)
        for count, when in profile.router_removals:
            removal_plan.extend([when] * count)
        for removal_date in removal_plan:
            extras.append(
                RouterSpec(
                    name=self._names.router_name(),
                    site=self._rng.choice(sites),
                    role=RouterRole.EDGE,
                    lifetime=Lifetime(birth=config.window_start, death=removal_date),
                )
            )
        self.extra_routers = extras

    def _link_birth_plan(self, count: int, initial_fraction: float, stepped: bool) -> list[datetime]:
        """Birth dates for ``count`` links of one category.

        External links grow gradually (uniform births); internal links grow
        "by steps" (births clustered on the profile's step dates) — the
        Figure 4b contrast.
        """
        config = self.config
        initial = int(round(initial_fraction * count))
        births = [config.window_start] * initial
        remaining = count - initial
        if remaining <= 0:
            return births[:count]
        if not stepped:
            for _ in range(remaining):
                births.append(self._random_date(config.window_start + timedelta(days=7), config.window_end - timedelta(days=3)))
            return births

        step_dates = self.profile.internal_step_dates
        if step_dates is None:
            step_count = max(3, min(8, remaining // 12 + 3))
            step_dates = tuple(
                self._random_date(config.window_start + timedelta(days=45), config.window_end - timedelta(days=15))
                for _ in range(step_count)
            )
        weights = self.profile.internal_step_weights
        if weights is None or len(weights) != len(step_dates):
            weights = tuple(1.0 for _ in step_dates)
        total_weight = sum(weights)
        allocated = 0
        for date, weight in zip(step_dates, weights):
            share = int(round(remaining * weight / total_weight))
            share = min(share, remaining - allocated)
            births.extend([date] * share)
            allocated += share
        while allocated < remaining:
            births.append(step_dates[-1])
            allocated += 1
        return births

    def _distribute_sizes(self, group_count: int, total_links: int, fixed_singletons: int) -> list[int]:
        """Split ``total_links`` over ``group_count`` groups, the first
        ``fixed_singletons`` of which stay at exactly one link (stubs)."""
        if group_count == 0:
            if total_links:
                raise SimulationError("links to place but no groups")
            return []
        flexible = group_count - fixed_singletons
        sizes = [1] * group_count
        spare = total_links - group_count
        if spare < 0:
            raise SimulationError(
                f"cannot place {total_links} links into {group_count} groups"
            )
        if flexible == 0 and spare > 0:
            raise SimulationError("only singleton groups but extra links to place")
        flexible_indices = list(range(fixed_singletons, group_count))
        for _ in range(spare):
            sizes[self._rng.choice(flexible_indices)] += 1
        return sizes

    def _make_group(
        self,
        node_a: str,
        node_b: str,
        size: int,
        external: bool,
        births: list[datetime],
        lifetime_cap: Lifetime | None = None,
        group_tag: str | None = None,
    ) -> GroupSpec:
        """Build one parallel group; link ``#k`` labels, optional duplicates."""
        group_id = group_tag or f"{self.map_name.value}/g{next(self._link_counter):05d}"
        duplicate_labels = self._rng.random() < self.profile.duplicate_label_fraction
        links: list[LinkSpec] = []
        ordered_births = sorted(births)
        for index in range(size):
            label = "#1" if duplicate_labels else f"#{index + 1}"
            birth = ordered_births[index] if index < len(ordered_births) else ordered_births[-1]
            death = FOREVER
            if lifetime_cap is not None:
                birth = max(birth, lifetime_cap.birth)
                death = lifetime_cap.death
            links.append(
                LinkSpec(
                    link_id=f"{group_id}/l{index + 1}",
                    group_id=group_id,
                    a=node_a,
                    b=node_b,
                    label_a=label,
                    label_b=label,
                    external=external,
                    lifetime=Lifetime(birth=birth, death=death),
                )
            )
        return GroupSpec(
            group_id=group_id, a=node_a, b=node_b, external=external, links=tuple(links)
        )

    def _build_lend_groups(self) -> int:
        """Designate lent gateway routers and build the shared groups.

        For each sharing relation this map owns, pick stable core routers,
        connect them in a ring of parallel groups whose sizes sum to the
        plan's link count, and record the bundle for the borrowing map to
        mirror.  Returns the number of links created (they count toward
        this map's internal-link target).
        """
        total_links = 0
        already_lent: set[str] = set()
        for plan in self._lend_plans:
            candidates = [
                spec
                for spec in self.routers
                if not spec.borrowed
                and spec.role == RouterRole.CORE
                and spec.lifetime.birth == self.config.window_start
                and spec.lifetime.death == FOREVER
                and not spec.lifetime.outages
                and spec.name not in already_lent
            ]
            if len(candidates) < plan.router_count:
                # Fall back to stable edge routers when the core is small.
                candidates.extend(
                    spec
                    for spec in self.routers
                    if not spec.borrowed
                    and spec.role == RouterRole.EDGE
                    and spec.lifetime.birth == self.config.window_start
                    and spec.lifetime.death == FOREVER
                    and not spec.lifetime.outages
                    and spec.name not in already_lent
                )
            if len(candidates) < plan.router_count:
                raise SimulationError(
                    f"{self.map_name.value} cannot lend {plan.router_count} routers "
                    f"to {plan.borrower.value}"
                )
            lent = candidates[: plan.router_count]
            already_lent.update(spec.name for spec in lent)

            pairs: list[tuple[str, str]] = []
            if len(lent) == 2:
                pairs.append((lent[0].name, lent[1].name))
            else:
                for index, spec in enumerate(lent):
                    pairs.append((spec.name, lent[(index + 1) % len(lent)].name))
            sizes = self._distribute_sizes(len(pairs), plan.link_count, fixed_singletons=0)
            groups: list[GroupSpec] = []
            for pair_index, ((node_a, node_b), size) in enumerate(zip(pairs, sizes)):
                group_id = (
                    f"{self.map_name.value}/shared/{plan.borrower.value}/g{pair_index:02d}"
                )
                links = tuple(
                    LinkSpec(
                        link_id=f"{group_id}/l{link_index + 1}",
                        group_id=group_id,
                        a=node_a,
                        b=node_b,
                        label_a=f"#{link_index + 1}",
                        label_b=f"#{link_index + 1}",
                        external=False,
                        lifetime=Lifetime(birth=self.config.window_start),
                    )
                    for link_index in range(size)
                )
                groups.append(
                    GroupSpec(
                        group_id=group_id,
                        a=node_a,
                        b=node_b,
                        external=False,
                        links=links,
                        shared=True,
                    )
                )
            self.groups.extend(groups)
            total_links += plan.link_count
            self._lent[plan.borrower] = BorrowedBundle(
                owner=self.map_name,
                routers=tuple((spec.name, spec.site) for spec in lent),
                groups=tuple(groups),
            )
        return total_links

    def lent_bundle(self, borrower: MapName) -> BorrowedBundle:
        """The routers and groups this map lends to ``borrower``."""
        try:
            return self._lent[borrower]
        except KeyError as exc:
            raise SimulationError(
                f"{self.map_name.value} lends nothing to {borrower.value}"
            ) from exc

    def _build_internal_groups(self) -> None:
        """Router-to-router adjacencies: site backbone + edge uplinks + stubs."""
        profile = self.profile
        target_internal = profile.reference_counts[1] - self._shared_internal_links
        if target_internal < 0:
            raise SimulationError(
                f"{self.map_name.value}: shared links exceed the internal target"
            )
        if target_internal == 0:
            return
        cores = [spec for spec in self.routers if spec.role == RouterRole.CORE]
        edges = [spec for spec in self.routers if spec.role == RouterRole.EDGE]
        stubs = [spec for spec in self.routers if spec.role == RouterRole.STUB]
        if len(cores) < 2:
            cores = cores + edges[: 2 - len(cores)]
            edges = edges[max(0, 2 - len(cores)):]
        if len(cores) < 2:
            raise SimulationError("map too small to build a backbone")

        adjacencies: list[tuple[str, str]] = []
        seen_pairs: set[tuple[str, str]] = set()
        borrowed_names = {name for name, _ in self._borrowed}

        def add_pair(a: str, b: str) -> None:
            key = tuple(sorted((a, b)))
            if a == b or key in seen_pairs:
                return
            # Never generate fresh links between two *borrowed* routers:
            # links among shared gateways belong to the owner map (and are
            # mirrored here via the borrowed bundle), so a fresh group
            # would double-count in Table 1's de-duplicated total.
            if a in borrowed_names and b in borrowed_names:
                return
            seen_pairs.add(key)
            adjacencies.append((a, b))

        # Core ring plus chords.
        for index, spec in enumerate(cores):
            add_pair(spec.name, cores[(index + 1) % len(cores)].name)
        chord_count = max(1, len(cores) // 3)
        for _ in range(chord_count * 3):
            if len(adjacencies) >= len(cores) + chord_count:
                break
            first, second = self._rng.sample(cores, 2)
            add_pair(first.name, second.name)

        # Edge routers uplink to core routers (a few get dual uplinks).
        for index, spec in enumerate(edges):
            primary = cores[index % len(cores)]
            add_pair(spec.name, primary.name)
            if index % 8 == 0 and len(cores) > 1:
                secondary = cores[(index + len(cores) // 2) % len(cores)]
                add_pair(spec.name, secondary.name)

        stub_pairs: list[tuple[str, str]] = []
        attach_pool = cores + edges if edges else cores
        for index, spec in enumerate(stubs):
            target = attach_pool[index % len(attach_pool)]
            stub_pairs.append((spec.name, target.name))

        group_count = len(adjacencies) + len(stub_pairs)
        sizes = self._distribute_sizes(group_count, target_internal, fixed_singletons=len(stub_pairs))

        births = self._link_birth_plan(target_internal, profile.initial_internal_fraction, stepped=True)
        self._rng.shuffle(births)
        cursor = 0
        pair_list = stub_pairs + adjacencies
        router_lookup = {spec.name: spec for spec in self.routers}
        for (node_a, node_b), size in zip(pair_list, sizes):
            group_births = births[cursor:cursor + size]
            cursor += size
            # Links cannot predate their endpoints.
            floor = max(router_lookup[node_a].lifetime.birth, router_lookup[node_b].lifetime.birth)
            group_births = [max(birth, floor) for birth in group_births]
            # The group's first link is born with its endpoints: a router
            # must never sit on the map with zero links (the parser's
            # isolated-router sanity check would reject the snapshot).
            group_births[0] = floor
            self.groups.append(
                self._make_group(node_a, node_b, size, external=False, births=group_births)
            )

    def _build_external_groups(self) -> None:
        """Peering attachments, including the scripted upgrade group."""
        profile = self.profile
        target_external = profile.reference_counts[2]
        if target_external == 0:
            return
        attach_pool = [
            spec
            for spec in self.routers
            if spec.role in (RouterRole.CORE, RouterRole.EDGE)
            # Peerings attach to routers present from the campaign start:
            # otherwise a late-born router would clamp a whole multi-link
            # peering group to its birth date, producing the stepwise
            # jumps that Figure 4b reserves for *internal* links.
            and spec.lifetime.birth == self.config.window_start
        ]
        if not attach_pool:
            attach_pool = list(self.routers)

        # The scripted upgrade group is reserved first so its peering,
        # size, and link timing are exactly the Figure 6 scenario.
        if self.upgrade is not None:
            target_external -= self._build_upgrade_group(attach_pool)

        mean = max(1.5, profile.external_parallel_mean)
        peering_count = max(1, int(round(target_external / mean)))

        pairs: list[tuple[str, str]] = []
        peering_names: list[str] = []
        for index in range(peering_count):
            peering = self._names.peering_name()
            peering_names.append(peering)
            attachments = 2 if self._rng.random() < 0.10 else 1
            for _ in range(attachments):
                router = self._rng.choice(attach_pool)
                pairs.append((router.name, peering))

        sizes = self._distribute_sizes(len(pairs), target_external, fixed_singletons=0)
        births = self._link_birth_plan(target_external, profile.initial_external_fraction, stepped=False)
        self._rng.shuffle(births)
        cursor = 0
        router_lookup = {spec.name: spec for spec in self.routers}
        peering_births: dict[str, datetime] = {}
        for (router_name, peering_name), size in zip(pairs, sizes):
            group_births = births[cursor:cursor + size]
            cursor += size
            floor = router_lookup[router_name].lifetime.birth
            group_births = [max(birth, floor) for birth in group_births]
            group = self._make_group(router_name, peering_name, size, external=True, births=group_births)
            self.groups.append(group)
            first_birth = min(link.lifetime.birth for link in group.links)
            existing = peering_births.get(peering_name)
            if existing is None or first_birth < existing:
                peering_births[peering_name] = first_birth

        for peering_name in peering_names:
            self.peerings.append(
                PeeringSpec(
                    name=peering_name,
                    lifetime=Lifetime(birth=peering_births.get(peering_name, self.config.window_start)),
                )
            )

    def _build_upgrade_group(self, attach_pool: list[RouterSpec]) -> int:
        """Create the scripted upgrade group; returns its reference size.

        ``links_before`` links exist from the window start; the extra link
        is born at ``added_at`` but only activates at ``activated_at``, so
        between the two it renders at 0 % (the Figure 6 arrow A→C span).
        """
        scenario = self.upgrade
        assert scenario is not None
        stable = [spec for spec in attach_pool if spec.lifetime.birth == self.config.window_start]
        router = (stable or attach_pool)[0]
        peering_name = self._names.reserve(scenario.peering)
        group_id = f"{self.map_name.value}/upgrade"
        links: list[LinkSpec] = []
        for index in range(scenario.links_before):
            links.append(
                LinkSpec(
                    link_id=f"{group_id}/l{index + 1}",
                    group_id=group_id,
                    a=router.name,
                    b=peering_name,
                    label_a=f"#{index + 1}",
                    label_b=f"#{index + 1}",
                    external=True,
                    lifetime=Lifetime(birth=self.config.window_start),
                )
            )
        links.append(
            LinkSpec(
                link_id=f"{group_id}/l{scenario.links_after}",
                group_id=group_id,
                a=router.name,
                b=peering_name,
                label_a=f"#{scenario.links_after}",
                label_b=f"#{scenario.links_after}",
                external=True,
                lifetime=Lifetime(birth=scenario.added_at),
                activation=scenario.activated_at,
            )
        )
        group = GroupSpec(
            group_id=group_id,
            a=router.name,
            b=peering_name,
            external=True,
            links=tuple(links),
        )
        self.groups.append(group)
        self.peerings.append(
            PeeringSpec(name=peering_name, lifetime=Lifetime(birth=self.config.window_start))
        )
        self.upgrade_group_id = group_id
        return scenario.links_after

    def _build_extra_router_links(self) -> None:
        """Links for the extra (to-be-removed) routers.

        These exist only while their router does, so reference-date counts
        are unaffected, but Figure 4b shows their removal dips.
        """
        cores = [spec for spec in self.routers if spec.role == RouterRole.CORE]
        if not cores:
            return
        for spec in self.extra_routers:
            uplink = self._rng.choice(cores)
            size = self._rng.randint(2, max(2, int(self.profile.internal_parallel_mean) // 2))
            births = [spec.lifetime.birth] * size
            self.groups.append(
                self._make_group(
                    spec.name,
                    uplink.name,
                    size,
                    external=False,
                    births=births,
                    lifetime_cap=spec.lifetime,
                )
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _link_counter_for(self, external: bool) -> _EventCounter:
        """Alive-count index for one link category, endpoint lifetimes included."""
        intervals: list[tuple[datetime, datetime]] = []
        lookup = {spec.name: spec for spec in self.all_routers}
        for peering in self.peerings:
            lookup[peering.name] = RouterSpec(
                name=peering.name, site="", role="peering", lifetime=peering.lifetime
            )
        for group in self.groups:
            if group.external != external:
                continue
            life_a = lookup[group.a].lifetime
            life_b = lookup[group.b].lifetime
            for link in group.links:
                for span in link.lifetime.intersect(life_a):
                    for b_start, b_end in life_b.intervals():
                        start = max(span[0], b_start)
                        end = min(span[1], b_end)
                        if start < end:
                            intervals.append((start, end))
        return _EventCounter(intervals)

    def router_count_at(self, when: datetime) -> int:
        """Number of routers on the map at ``when`` (Figure 4a)."""
        return self._router_counter.count_at(when)

    def link_counts_at(self, when: datetime) -> tuple[int, int]:
        """(internal, external) link counts at ``when`` (Figure 4b)."""
        return (
            self._internal_counter.count_at(when),
            self._external_counter.count_at(when),
        )

    def router_spec(self, name: str) -> RouterSpec:
        """Lookup a router spec by name."""
        return self._router_specs[name]

    def alive_links_at(self, when: datetime) -> list[LinkSpec]:
        """Link specs present at ``when`` (both endpoints alive too)."""
        lookup: dict[str, Lifetime] = {
            spec.name: spec.lifetime for spec in self.all_routers
        }
        for peering in self.peerings:
            lookup[peering.name] = peering.lifetime
        alive: list[LinkSpec] = []
        for group in self.groups:
            if not lookup[group.a].alive_at(when) or not lookup[group.b].alive_at(when):
                continue
            alive.extend(link for link in group.links if link.lifetime.alive_at(when))
        return alive

    def alive_routers_at(self, when: datetime) -> list[RouterSpec]:
        """Router specs present at ``when``."""
        return [spec for spec in self.all_routers if spec.lifetime.alive_at(when)]

    def alive_peerings_at(self, when: datetime) -> list[PeeringSpec]:
        """Peering specs present at ``when``."""
        return [spec for spec in self.peerings if spec.lifetime.alive_at(when)]

    def group_lookup(self) -> dict[str, GroupSpec]:
        """Groups indexed by id."""
        return {group.group_id: group for group in self.groups}
