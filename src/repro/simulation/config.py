"""Simulation configuration.

The default configuration is calibrated against the paper: per-map element
counts match Table 1 exactly on the reference date, the Europe map replays
the Figure 4a/4b event narrative (make-before-break router swap in
Aug-Sep 2020, removals in Jun 2021, a short dip in Aug 2021, stepwise
internal-link growth with a large step in Nov 2021, gradual external-link
growth), link loads follow the Figure 5 distributions, and an AMS-IX-style
upgrade scenario reproduces Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone

from repro.constants import (
    COLLECTION_START,
    MapName,
    REFERENCE_DATE,
    TABLE1_PAPER,
)
from repro.errors import SimulationError


@dataclass(frozen=True, slots=True)
class TrafficProfile:
    """Parameters of the diurnal link-load model (Figure 5 behaviours)."""

    #: Mean base load (%) of internal parallel-link groups.
    internal_mean_load: float = 24.0
    #: Mean base load (%) of external groups — lower, per Section 5: external
    #: links carry more provisioning headroom than internal ones.
    external_mean_load: float = 15.0
    #: Lognormal sigma of the per-group base-load draw.
    base_load_sigma: float = 0.55
    #: Relative amplitude of the day cycle (median swings by this factor).
    diurnal_amplitude: float = 0.38
    #: Local hour of the daily load peak ("between 7 and 9 p.m.").
    peak_hour: float = 20.0
    #: Lognormal sigma of the per-sample multiplicative noise — multiplicative,
    #: so absolute variance grows with load as Figure 5a shows.
    noise_sigma: float = 0.22
    #: Weekly modulation amplitude (weekends slightly quieter).
    weekly_amplitude: float = 0.06
    #: ECMP jitter (load percentage points) on internal groups.
    internal_ecmp_jitter: float = 0.55
    #: ECMP jitter on external groups — tighter, per Figure 5c.
    external_ecmp_jitter: float = 0.35
    #: Fraction of groups with a pathological hash imbalance.
    skewed_group_fraction: float = 0.08
    #: Extra jitter applied to skewed groups.
    skewed_extra_jitter: float = 6.0
    #: Fraction of links administratively disabled (0 % load).
    disabled_link_fraction: float = 0.04
    #: Fraction of groups idling at control-traffic level (~1 % load).
    idle_group_fraction: float = 0.05
    #: Days for per-link load to recover after a capacity addition (the
    #: Figure 6 dilution mechanism); 0 disables dilution entirely.
    dilution_recovery_days: float = 75.0


@dataclass(frozen=True, slots=True)
class RouterSwapEvent:
    """A make-before-break style event: add routers, then remove others."""

    add_count: int
    add_start: datetime
    add_end: datetime
    remove_count: int
    remove_at: datetime


@dataclass(frozen=True, slots=True)
class OutageEvent:
    """A temporary removal of routers from the map (maintenance/failure)."""

    router_count: int
    start: datetime
    duration: timedelta


@dataclass(frozen=True, slots=True)
class MapProfile:
    """Structural generation targets for one backbone map."""

    #: Exact element counts at the reference date: (routers, internal
    #: links, external links) — the Table 1 row.
    reference_counts: tuple[int, int, int]
    #: Number of core sites the backbone is organised around.
    core_sites: int
    #: Fraction of routers that are single-link stubs (drives the >20 %
    #: degree-1 mass of Figure 4c).
    stub_fraction: float = 0.24
    #: Mean parallel links per internal adjacency (Section 5: 6.58 average
    #: parallel links on the Europe map).
    internal_parallel_mean: float = 8.0
    #: Mean parallel links per external adjacency.
    external_parallel_mean: float = 5.5
    #: Fraction of routers already on the map at collection start.
    initial_router_fraction: float = 0.93
    #: Fraction of internal links already present at collection start.
    initial_internal_fraction: float = 0.82
    #: Fraction of external links already present at collection start.
    initial_external_fraction: float = 0.72
    #: Dates at which internal-link growth steps happen; ``None`` uses
    #: procedurally drawn dates.
    internal_step_dates: tuple[datetime, ...] | None = None
    #: Relative weight of each internal step (normalised internally).
    internal_step_weights: tuple[float, ...] | None = None
    #: Scripted add-then-remove events (Figure 4a narrative).
    router_swaps: tuple[RouterSwapEvent, ...] = field(default=())
    #: Scripted permanent removals: (count, date).
    router_removals: tuple[tuple[int, datetime], ...] = field(default=())
    #: Scripted temporary outages.
    outages: tuple[OutageEvent, ...] = field(default=())
    #: Probability that a parallel group reuses the same label on every
    #: link (the VODAFONE case of Figure 1).
    duplicate_label_fraction: float = 0.06

    def __post_init__(self) -> None:
        routers, internal, external = self.reference_counts
        if routers < 2:
            raise SimulationError("a map needs at least two routers")
        if internal < routers - 1 and routers > 2:
            raise SimulationError(
                "not enough internal links to keep the map loosely connected"
            )
        if external < 0:
            raise SimulationError("external link count cannot be negative")


def _utc(year: int, month: int, day: int) -> datetime:
    return datetime(year, month, day, tzinfo=timezone.utc)


@dataclass(frozen=True, slots=True)
class SharedRouters:
    """A router/link sharing relation between two maps.

    ``router_count`` routers owned by ``owner`` also appear on
    ``borrower``'s map, and ``link_count`` internal links *among those
    routers* are shown on both maps.  Table 1's total row de-duplicates
    both: the paper's 212 per-map router appearances collapse to 181
    distinct routers, and 1,323 per-map internal links to 1,186.
    """

    owner: MapName
    borrower: MapName
    router_count: int
    link_count: int

    def __post_init__(self) -> None:
        if self.owner == self.borrower:
            raise SimulationError("a map cannot borrow routers from itself")
        if self.router_count < 2:
            raise SimulationError("sharing needs at least two routers to link")
        if self.link_count < self.router_count - 1:
            raise SimulationError(
                "not enough shared links to keep every shared router connected"
            )


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Full configuration of the backbone simulator."""

    seed: int = 2022
    window_start: datetime = COLLECTION_START
    window_end: datetime = REFERENCE_DATE
    maps: dict[MapName, MapProfile] = field(default_factory=dict)
    traffic: TrafficProfile = field(default_factory=TrafficProfile)
    #: Router/link sharing relations between maps.
    shared_routers: tuple[SharedRouters, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.window_end <= self.window_start:
            raise SimulationError("simulation window is empty")

    def profile(self, map_name: MapName) -> MapProfile:
        """The profile for one map."""
        try:
            return self.maps[map_name]
        except KeyError as exc:
            raise SimulationError(f"no profile for map {map_name.value}") from exc


def scaleway_like_config(seed: int = 4242) -> SimulationConfig:
    """A second, smaller provider for cross-provider comparison.

    The paper's discussion notes that Scaleway publishes an SVG weather
    map of its backbone, "while the network size is inferior compared to
    the one of our dataset", and invites comparisons between the two
    networks.  This profile models such a provider: a single backbone map
    roughly a quarter of OVH-Europe's size, fewer parallel links per
    adjacency, hotter links (less provisioning headroom), and looser ECMP
    balance — the contrasts a comparison study would look for.
    """
    backbone = MapProfile(
        reference_counts=(31, 148, 74),
        core_sites=5,
        stub_fraction=0.20,
        internal_parallel_mean=4.0,
        external_parallel_mean=2.5,
        initial_router_fraction=0.90,
        initial_internal_fraction=0.85,
        initial_external_fraction=0.80,
    )
    traffic = TrafficProfile(
        internal_mean_load=32.0,
        external_mean_load=24.0,
        internal_ecmp_jitter=1.1,
        external_ecmp_jitter=0.8,
        skewed_group_fraction=0.15,
    )
    return SimulationConfig(
        seed=seed,
        maps={MapName.EUROPE: backbone},
        traffic=traffic,
    )


def default_config(seed: int = 2022) -> SimulationConfig:
    """The paper-calibrated default configuration.

    Reference counts reproduce Table 1 exactly; the Europe scripted events
    replay the Figure 4a narrative; sharing reproduces Table 1's total row
    (212 per-map router appearances de-duplicating to 181 distinct routers).
    """
    europe = MapProfile(
        reference_counts=TABLE1_PAPER[MapName.EUROPE],
        core_sites=12,
        router_swaps=(
            RouterSwapEvent(
                add_count=10,
                add_start=_utc(2020, 8, 1),
                add_end=_utc(2020, 9, 15),
                remove_count=4,
                remove_at=_utc(2020, 9, 28),
            ),
        ),
        router_removals=((4, _utc(2021, 6, 10)),),
        outages=(
            OutageEvent(
                router_count=3, start=_utc(2021, 8, 9), duration=timedelta(days=5)
            ),
        ),
        internal_step_dates=(
            _utc(2020, 10, 6),
            _utc(2021, 2, 17),
            _utc(2021, 6, 29),
            _utc(2021, 11, 9),
            _utc(2022, 3, 22),
            _utc(2022, 7, 5),
        ),
        # The Nov 2021 step is "an important event of increase" (Fig. 4b).
        internal_step_weights=(0.12, 0.10, 0.12, 0.42, 0.12, 0.12),
    )
    world = MapProfile(
        reference_counts=TABLE1_PAPER[MapName.WORLD],
        core_sites=8,
        stub_fraction=0.0,
        internal_parallel_mean=4.0,
        initial_router_fraction=1.0,
        initial_internal_fraction=0.85,
        initial_external_fraction=1.0,
    )
    north_america = MapProfile(
        reference_counts=TABLE1_PAPER[MapName.NORTH_AMERICA],
        core_sites=8,
        stub_fraction=0.22,
    )
    asia_pacific = MapProfile(
        reference_counts=TABLE1_PAPER[MapName.ASIA_PACIFIC],
        core_sites=5,
        stub_fraction=0.20,
        internal_parallel_mean=5.0,
        external_parallel_mean=3.0,
    )
    return SimulationConfig(
        seed=seed,
        maps={
            MapName.EUROPE: europe,
            MapName.WORLD: world,
            MapName.NORTH_AMERICA: north_america,
            MapName.ASIA_PACIFIC: asia_pacific,
        },
        # 31 duplicate router appearances (212 per-map routers, 181
        # distinct) and 137 duplicate link appearances (1,323 per-map
        # internal links, 1,186 distinct) — Table 1's total row.  The
        # World map's 16 routers and 76 links are all borrowed/mirrored
        # from the continental maps (40 + 26 + 10); 15 more gateways and
        # 61 more links (34 + 15 + 12) are shared between continental
        # pairs.
        shared_routers=(
            SharedRouters(MapName.EUROPE, MapName.WORLD, 7, 40),
            SharedRouters(MapName.NORTH_AMERICA, MapName.WORLD, 6, 26),
            SharedRouters(MapName.ASIA_PACIFIC, MapName.WORLD, 3, 10),
            SharedRouters(MapName.EUROPE, MapName.NORTH_AMERICA, 8, 34),
            SharedRouters(MapName.NORTH_AMERICA, MapName.ASIA_PACIFIC, 4, 15),
            SharedRouters(MapName.EUROPE, MapName.ASIA_PACIFIC, 3, 12),
        ),
    )
