"""Deterministic backbone-network evolution simulator.

This package substitutes for the live OVH Network Weathermap: it produces,
for any timestamp in the collection window, the full topology and link loads
of the four backbone maps, with the behaviours the paper's analysis section
documents — gradual external-link growth, stepwise internal-link growth,
make-before-break router upgrades, maintenance dips, diurnal load cycles,
tight ECMP balance, and a scripted AMS-IX-style link-upgrade event.

Everything is a pure function of (configuration, seed, timestamp): two
simulators built with the same inputs produce byte-identical histories.
"""

from repro.simulation.config import (
    MapProfile,
    SharedRouters,
    SimulationConfig,
    TrafficProfile,
    default_config,
    scaleway_like_config,
)
from repro.simulation.network import BackboneSimulator
from repro.simulation.events import UpgradeScenario
from repro.simulation.seeds import stable_seed, substream

__all__ = [
    "MapProfile",
    "SharedRouters",
    "SimulationConfig",
    "TrafficProfile",
    "default_config",
    "scaleway_like_config",
    "BackboneSimulator",
    "UpgradeScenario",
    "stable_seed",
    "substream",
]
