"""Scripted link-upgrade scenario (the Figure 6 case study).

The paper traces the addition of a fifth parallel link towards the AMS-IX
peering: the link appears on the map unused (arrow *A*), PeeringDB is
updated nine days later announcing the capacity increase from 400 Gbps to
500 Gbps (arrow *B*), and the link is activated two weeks after its
addition, spreading traffic over all five links and cutting per-link load
by the 4/5 capacity ratio (arrow *C*).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone

from repro.constants import MapName
from repro.errors import SimulationError


@dataclass(frozen=True, slots=True)
class UpgradeScenario:
    """A make-then-activate parallel-link capacity upgrade."""

    map_name: MapName = MapName.EUROPE
    peering: str = "AMS-IX"
    #: Parallel links before the upgrade (the paper infers 4 × 100 Gbps).
    links_before: int = 4
    per_link_capacity_gbps: int = 100
    #: Arrow A — the new link appears on the map, unused.
    added_at: datetime = datetime(2022, 3, 5, tzinfo=timezone.utc)
    #: Arrow B — PeeringDB reports the new total capacity.
    peeringdb_at: datetime = datetime(2022, 3, 14, tzinfo=timezone.utc)
    #: Arrow C — the link starts carrying traffic.
    activated_at: datetime = datetime(2022, 3, 19, tzinfo=timezone.utc)
    #: Mean per-link load before the upgrade, in percent.
    base_load: float = 45.0

    def __post_init__(self) -> None:
        if not self.added_at < self.peeringdb_at < self.activated_at:
            raise SimulationError(
                "upgrade events must be ordered added < peeringdb < activated"
            )
        if self.links_before < 1:
            raise SimulationError("an upgrade needs at least one existing link")
        if not 0 < self.base_load <= 100:
            raise SimulationError("base load must be a percentage")

    @property
    def links_after(self) -> int:
        """Parallel links once the upgrade completes."""
        return self.links_before + 1

    @property
    def capacity_before_gbps(self) -> int:
        """Aggregate capacity before the upgrade (400 Gbps in the paper)."""
        return self.links_before * self.per_link_capacity_gbps

    @property
    def capacity_after_gbps(self) -> int:
        """Aggregate capacity after the upgrade (500 Gbps in the paper)."""
        return self.links_after * self.per_link_capacity_gbps

    @property
    def expected_load_ratio(self) -> float:
        """Per-link load ratio after activation (4/5 in the paper)."""
        return self.links_before / self.links_after
