"""The backbone simulator: four coordinated maps, snapshots on demand.

``BackboneSimulator`` stands in for the live OVH Network Weathermap.  It
builds the structural history of the four backbone maps — honouring the
router-sharing plan that makes Table 1's total row de-duplicate — and
materialises a full :class:`~repro.topology.model.MapSnapshot` (topology +
integer link loads) for any timestamp in the collection window.
"""

from __future__ import annotations

from datetime import datetime

from repro.constants import MapName
from repro.errors import SimulationError
from repro.simulation.config import SimulationConfig, default_config
from repro.simulation.events import UpgradeScenario
from repro.simulation.evolution import GroupSpec, LinkSpec, MapEvolution
from repro.simulation.traffic import TrafficModel
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node, NodeKind

#: Build order: owners before borrowers.
_BUILD_ORDER = (
    MapName.EUROPE,
    MapName.NORTH_AMERICA,
    MapName.ASIA_PACIFIC,
    MapName.WORLD,
)


class BackboneSimulator:
    """Deterministic stand-in for the OVH Network Weathermap."""

    def __init__(
        self,
        config: SimulationConfig | None = None,
        upgrade: UpgradeScenario | None = None,
    ) -> None:
        """Build the full multi-map history.

        Args:
            config: simulation configuration; the paper-calibrated default
                when omitted.
            upgrade: the scripted Figure 6 scenario; the default scenario
                when omitted.  Pass a scenario with an unused map to
                disable it.
        """
        self.config = config if config is not None else default_config()
        self.upgrade = upgrade if upgrade is not None else UpgradeScenario()
        self._evolutions: dict[MapName, MapEvolution] = {}
        self._traffic: dict[MapName, TrafficModel] = {}
        self._build()

    def _build(self) -> None:
        for map_name in _BUILD_ORDER:
            if map_name not in self.config.maps:
                continue
            bundles = []
            for plan in self.config.shared_routers:
                if plan.borrower != map_name:
                    continue
                owner_evolution = self._evolutions.get(plan.owner)
                if owner_evolution is None:
                    raise SimulationError(
                        f"{plan.borrower.value} borrows from {plan.owner.value}, "
                        "which is not built yet — sharing must follow the build order"
                    )
                bundles.append(owner_evolution.lent_bundle(map_name))
            lend_plans = [
                plan for plan in self.config.shared_routers if plan.owner == map_name
            ]
            evolution = MapEvolution(
                map_name,
                self.config.profile(map_name),
                self.config,
                borrowed_bundles=bundles,
                lend_plans=lend_plans,
                upgrade=self.upgrade,
            )
            self._evolutions[map_name] = evolution
            upgrade_base = (
                self.upgrade.base_load
                if evolution.upgrade_group_id is not None
                else None
            )
            self._traffic[map_name] = TrafficModel(
                self.config,
                map_name.value,
                upgrade_group_id=evolution.upgrade_group_id,
                upgrade_base_load=upgrade_base,
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def map_names(self) -> list[MapName]:
        """Maps this simulator produces, in build order."""
        return [name for name in _BUILD_ORDER if name in self._evolutions]

    def evolution(self, map_name: MapName) -> MapEvolution:
        """The structural history of one map."""
        try:
            return self._evolutions[map_name]
        except KeyError as exc:
            raise SimulationError(f"map {map_name.value} not simulated") from exc

    def traffic(self, map_name: MapName) -> TrafficModel:
        """The traffic model of one map."""
        return self._traffic[map_name]

    def _check_window(self, when: datetime) -> None:
        if not self.config.window_start <= when <= self.config.window_end:
            raise SimulationError(
                f"{when.isoformat()} outside the simulation window "
                f"[{self.config.window_start.isoformat()}, "
                f"{self.config.window_end.isoformat()}]"
            )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def counts(self, map_name: MapName, when: datetime) -> tuple[int, int, int]:
        """Fast (routers, internal links, external links) at ``when``."""
        self._check_window(when)
        evolution = self.evolution(map_name)
        internal, external = evolution.link_counts_at(when)
        return (evolution.router_count_at(when), internal, external)

    def distinct_router_count(self, when: datetime) -> int:
        """Routers across all maps, shared appearances counted once.

        This is Table 1's "total takes into account routers appearing
        simultaneously in several maps".
        """
        names: set[str] = set()
        for evolution in self._evolutions.values():
            names.update(spec.name for spec in evolution.alive_routers_at(when))
        return len(names)

    def snapshot(self, map_name: MapName, when: datetime) -> MapSnapshot:
        """Full topology + loads of one map at one instant."""
        self._check_window(when)
        evolution = self.evolution(map_name)
        traffic = self._traffic[map_name]
        snapshot = MapSnapshot(map_name=map_name, timestamp=when)

        for router in evolution.alive_routers_at(when):
            snapshot.add_node(Node(name=router.name, kind=NodeKind.ROUTER))
        for peering in evolution.alive_peerings_at(when):
            snapshot.add_node(Node(name=peering.name, kind=NodeKind.PEERING))

        alive_by_group = self._alive_links_by_group(evolution, when)
        for group, alive_links in alive_by_group:
            loads = traffic.group_loads(group, alive_links, when)
            for spec in alive_links:
                load_ab, load_ba = loads[spec.link_id]
                snapshot.add_link(
                    Link(
                        a=LinkEnd(node=spec.a, label=spec.label_a, load=float(load_ab)),
                        b=LinkEnd(node=spec.b, label=spec.label_b, load=float(load_ba)),
                    )
                )
        return snapshot

    def _alive_links_by_group(
        self, evolution: MapEvolution, when: datetime
    ) -> list[tuple[GroupSpec, list[LinkSpec]]]:
        """Alive link specs at ``when``, grouped, endpoint lifetimes honoured."""
        lifetimes = {spec.name: spec.lifetime for spec in evolution.all_routers}
        for peering in evolution.peerings:
            lifetimes[peering.name] = peering.lifetime
        result: list[tuple[GroupSpec, list[LinkSpec]]] = []
        for group in evolution.groups:
            if not lifetimes[group.a].alive_at(when):
                continue
            if not lifetimes[group.b].alive_at(when):
                continue
            alive = [link for link in group.links if link.lifetime.alive_at(when)]
            if alive:
                result.append((group, alive))
        return result

    # ------------------------------------------------------------------
    # The scripted upgrade (Figure 6)
    # ------------------------------------------------------------------

    def upgrade_group(self) -> GroupSpec:
        """The scripted upgrade's parallel-link group."""
        evolution = self.evolution(self.upgrade.map_name)
        if evolution.upgrade_group_id is None:
            raise SimulationError("no upgrade scenario on this simulator")
        return evolution.group_lookup()[evolution.upgrade_group_id]

    def upgrade_loads(self, when: datetime) -> dict[str, tuple[int, int]]:
        """Loads of every link of the upgrade group at ``when``."""
        self._check_window(when)
        evolution = self.evolution(self.upgrade.map_name)
        group = self.upgrade_group()
        alive = [link for link in group.links if link.lifetime.alive_at(when)]
        return self._traffic[self.upgrade.map_name].group_loads(group, alive, when)
