"""ECMP load spreading over parallel links.

Section 5 evaluates "the effectiveness of traffic engineering techniques
such as ECMP ... used to spread the traffic" over parallel links, finding
more than 60 % of directed-group imbalances at or below 1 %, and external
groups tighter still.  This module models that: each active link of a group
receives the group's per-link demand plus a small zero-sum jitter, and a
minority of groups carry a persistent hash skew that produces the
distribution's tail.
"""

from __future__ import annotations

from repro.rng import substream


def zero_sum_jitter(
    count: int, sigma: float, *namespace: str | int | float
) -> list[float]:
    """``count`` gaussian offsets re-centred to sum to zero.

    Centring keeps the group's aggregate demand intact while perturbing the
    per-link split — exactly what imperfect flow hashing does.
    """
    if count == 0:
        return []
    rng = substream("ecmp-jitter", *namespace)
    offsets = [rng.gauss(0.0, sigma) for _ in range(count)]
    mean = sum(offsets) / count
    return [offset - mean for offset in offsets]


def persistent_skew(
    count: int, magnitude: float, *namespace: str | int | float
) -> list[float]:
    """Stable per-link offsets for a pathologically skewed group.

    Drawn once per (group, direction) — not per timestamp — so the same
    links stay persistently hot/cold, as real bad hashing does.
    """
    if count == 0:
        return []
    rng = substream("ecmp-skew", *namespace)
    offsets = [rng.uniform(-magnitude, magnitude) for _ in range(count)]
    mean = sum(offsets) / count
    return [offset - mean for offset in offsets]


def spread_demand(
    per_link_demand: float,
    active: list[bool],
    jitter_sigma: float,
    skew: list[float] | None,
    *namespace: str | int | float,
) -> list[float]:
    """Per-link loads for one directed parallel group at one instant.

    Args:
        per_link_demand: demand each *active* link would carry under
            perfect balancing, in percent of link capacity.
        active: per-link activity flags (inactive links render at 0 %).
        jitter_sigma: standard deviation of the per-sample jitter.
        skew: optional persistent per-link offsets (same length as
            ``active``), for skewed groups.
        namespace: seed parts identifying (group, direction, timestamp).

    Returns:
        Unquantised per-link loads, clamped to [0, 100].
    """
    active_indices = [index for index, flag in enumerate(active) if flag]
    loads = [0.0] * len(active)
    if not active_indices:
        return loads
    jitter = zero_sum_jitter(len(active_indices), jitter_sigma, *namespace)
    for position, index in enumerate(active_indices):
        value = per_link_demand + jitter[position]
        if skew is not None:
            value += skew[index]
        loads[index] = min(100.0, max(0.0, value))
    return loads
