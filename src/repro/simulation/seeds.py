"""Seed derivation for the simulator — re-exported from :mod:`repro.rng`.

Kept as its own module so simulation code reads ``seeds.substream(...)``,
while the implementation lives at the top level to stay import-cycle-free
(the topology package uses it too).
"""

from repro.rng import stable_seed, stable_uniform, substream

__all__ = ["stable_seed", "stable_uniform", "substream"]
