"""The synthetic PeeringDB populated from a simulation.

Every peering on the simulated maps gets a static capacity entry at the
window start; the scripted upgrade scenario contributes the dated capacity
increase that Figure 6's arrow *B* points at.
"""

from __future__ import annotations

from datetime import datetime, timedelta

from repro.errors import DatasetError, SimulationError
from repro.peeringdb.model import CapacityRecord, NetworkPresence
from repro.rng import substream
from repro.simulation.network import BackboneSimulator

#: Plausible per-link capacities for generic peerings, in Gbps.
_GENERIC_CAPACITIES = (10, 40, 100, 200, 400)


class SyntheticPeeringDB:
    """An offline interconnection database for the simulated backbone."""

    def __init__(self, simulator: BackboneSimulator) -> None:
        self._presences: dict[str, NetworkPresence] = {}
        self._populate(simulator)

    def _populate(self, simulator: BackboneSimulator) -> None:
        scenario = simulator.upgrade
        try:
            upgrade_group = simulator.upgrade_group()
        except SimulationError:  # no scripted scenario on this simulator
            upgrade_group = None

        seed = simulator.config.seed
        for map_name in simulator.map_names:
            evolution = simulator.evolution(map_name)
            for peering in evolution.peerings:
                if peering.name in self._presences:
                    continue
                if upgrade_group is not None and peering.name == scenario.peering:
                    self._presences[peering.name] = NetworkPresence(
                        peering=peering.name,
                        records=(
                            CapacityRecord(
                                peering=peering.name,
                                capacity_gbps=scenario.capacity_before_gbps,
                                updated=simulator.config.window_start,
                            ),
                            CapacityRecord(
                                peering=peering.name,
                                capacity_gbps=scenario.capacity_after_gbps,
                                updated=scenario.peeringdb_at,
                            ),
                        ),
                    )
                    continue
                rng = substream("peeringdb", seed, peering.name)
                capacity = rng.choice(_GENERIC_CAPACITIES)
                self._presences[peering.name] = NetworkPresence(
                    peering=peering.name,
                    records=(
                        CapacityRecord(
                            peering=peering.name,
                            capacity_gbps=capacity,
                            updated=peering.lifetime.birth,
                        ),
                    ),
                )

    def peerings(self) -> list[str]:
        """Every peering point known to the database."""
        return sorted(self._presences)

    def presence(self, peering: str) -> NetworkPresence:
        """The capacity history at one peering point."""
        try:
            return self._presences[peering]
        except KeyError as exc:
            raise DatasetError(f"no PeeringDB presence for {peering!r}") from exc

    def capacity_at(self, peering: str, when: datetime) -> int | None:
        """Advertised capacity at ``when``."""
        return self.presence(peering).capacity_at(when)

    def changes_near(
        self, peering: str, around: datetime, window: timedelta = timedelta(days=30)
    ) -> list[tuple[datetime, int, int]]:
        """Capacity changes within ``window`` of ``around`` — the
        correlation primitive Figure 6's analysis uses."""
        return [
            change
            for change in self.presence(peering).changes()
            if abs((change[0] - around).total_seconds()) <= window.total_seconds()
        ]
