"""PeeringDB-style records."""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from repro.errors import SchemaError


@dataclass(frozen=True, slots=True)
class CapacityRecord:
    """A dated port-capacity entry for one network at one peering point.

    Mirrors the ``netixlan`` speed field of PeeringDB: the aggregate
    capacity, in Gbps, that the network advertises at the exchange,
    effective from ``updated``.
    """

    peering: str
    capacity_gbps: int
    updated: datetime

    def __post_init__(self) -> None:
        if self.capacity_gbps <= 0:
            raise SchemaError("capacity must be positive")


@dataclass(frozen=True, slots=True)
class NetworkPresence:
    """One network's presence at one peering point, with capacity history."""

    peering: str
    records: tuple[CapacityRecord, ...]

    def __post_init__(self) -> None:
        for record in self.records:
            if record.peering != self.peering:
                raise SchemaError(
                    f"record for {record.peering!r} in presence of {self.peering!r}"
                )
        stamps = [record.updated for record in self.records]
        if stamps != sorted(stamps):
            raise SchemaError("capacity records must be in chronological order")

    def capacity_at(self, when: datetime) -> int | None:
        """Advertised capacity in effect at ``when`` (None before the
        first record)."""
        capacity: int | None = None
        for record in self.records:
            if record.updated <= when:
                capacity = record.capacity_gbps
            else:
                break
        return capacity

    def changes(self) -> list[tuple[datetime, int, int]]:
        """(when, old capacity, new capacity) for each update."""
        result: list[tuple[datetime, int, int]] = []
        previous: int | None = None
        for record in self.records:
            if previous is not None and record.capacity_gbps != previous:
                result.append((record.updated, previous, record.capacity_gbps))
            previous = record.capacity_gbps
        return result
