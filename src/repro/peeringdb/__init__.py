"""Synthetic PeeringDB substrate.

Figure 6 correlates the weathermap's link-load drop with a PeeringDB
record announcing the capacity increase (400 Gbps → 500 Gbps towards
AMS-IX).  We cannot query the real PeeringDB offline, so this package
provides the closest synthetic equivalent: a timestamped record store of
per-IXP port capacities whose history includes the scripted upgrade —
enough to exercise the same correlation code path.
"""

from repro.peeringdb.model import CapacityRecord, NetworkPresence
from repro.peeringdb.feed import SyntheticPeeringDB

__all__ = ["CapacityRecord", "NetworkPresence", "SyntheticPeeringDB"]
