"""``repro-weather`` — drive the whole reproduction from the shell.

Subcommands::

    generate   simulate a collection campaign into a dataset directory
    process    run the SVG→YAML extraction over a dataset directory
    ingest     run/resume the crash-safe ingestion daemon, or show its status
    index      build or inspect the columnar snapshot index
    query      zero-copy scans over the index (time range, node, link, load)
    serve      run the cached HTTP read API over a dataset directory
    catalog    print per-map time frames and snapshot-distance stats
    tables     print Table 1 and Table 2 for a dataset directory
    render     render one snapshot SVG to stdout or a file
    upgrade    replay the Figure 6 case study
    metrics    render a saved telemetry snapshot (Prometheus or JSON)
    check      run the project's static-analysis rule pack (REP001–REP012)

``process``, ``index build``, and ``export`` accept ``--metrics-out PATH``
to dump the run's telemetry registry as a JSON snapshot, which ``metrics``
renders back in either exposition format.
"""

from __future__ import annotations

import argparse
import os
import sys
from datetime import datetime, timedelta, timezone
from pathlib import Path

from repro.analysis.upgrades import (
    correlate_with_peeringdb,
    detect_upgrades,
    track_peering_group,
)
from repro.constants import MapName, REFERENCE_DATE
from repro.dataset.catalog import DatasetCatalog
from repro.dataset.collector import SimulatedCollector
from repro.dataset.processor import process_map
from repro.dataset.store import DatasetStore, ShardedDatasetStore, open_store
from repro.dataset.summary import build_table1, build_table2, format_table1, format_table2
from repro.errors import CliUsageError
from repro.layout.renderer import MapRenderer
from repro.parsing.pipeline import ParseOptions
from repro.peeringdb.feed import SyntheticPeeringDB
from repro.simulation.network import BackboneSimulator
from repro.telemetry import get_registry, write_metrics_file
from repro.yamlio.deserialize import snapshot_from_yaml


def _parse_when(text: str) -> datetime:
    """Parse an ISO timestamp, defaulting to UTC when naive."""
    when = datetime.fromisoformat(text)
    if when.tzinfo is None:
        when = when.replace(tzinfo=timezone.utc)
    return when


def _workers_argument(text: str) -> int | str:
    if text == "auto":
        return text
    try:
        workers = int(text)
    except ValueError:
        raise CliUsageError(f"invalid workers value: {text!r}") from None
    if workers < 0:
        raise CliUsageError(
            f"workers must be >= 0 (0 or 'auto' = one per CPU core), got {workers}"
        )
    return workers


def _maybe_write_metrics(args: argparse.Namespace) -> None:
    """Honour ``--metrics-out`` by snapshotting the active registry."""
    path = getattr(args, "metrics_out", None)
    if path:
        write_metrics_file(Path(path), get_registry())
        print(f"wrote metrics to {path}", file=sys.stderr)


def _map_argument(text: str) -> MapName:
    try:
        return MapName(text)
    except ValueError:
        valid = ", ".join(m.value for m in MapName)
        raise CliUsageError(f"unknown map {text!r}; one of: {valid}") from None


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2022, help="simulation seed")


def _new_store(path: str, sharded: bool) -> DatasetStore:
    """A store for a dataset being created, honouring an existing layout."""
    if sharded:
        store = ShardedDatasetStore(path)
        store.mark()
        return store
    return open_store(path)


def cmd_generate(args: argparse.Namespace) -> int:
    """Simulate a collection campaign into a dataset directory."""
    simulator = BackboneSimulator()
    store = _new_store(args.output, args.sharded)
    collector = SimulatedCollector(simulator, store)
    maps = [args.map] if args.map else None
    start = _parse_when(args.start)
    end = _parse_when(args.end)
    stats = collector.collect(
        start, end, maps=maps, interval=timedelta(minutes=args.interval)
    )
    for map_name, files in stats.files_written.items():
        print(
            f"{map_name.value:<15} {files:>6} files "
            f"{stats.bytes_written[map_name] / 1024 / 1024:>9.1f} MiB "
            f"({stats.corrupted[map_name]} corrupted, "
            f"{stats.ticks_skipped[map_name]} ticks skipped)"
        )
    return 0


def cmd_process(args: argparse.Namespace) -> int:
    """Run SVG→YAML extraction over a dataset directory."""
    store = open_store(args.dataset)
    options = ParseOptions(fast_path=args.fast_path)
    for map_name in MapName:
        stats = process_map(
            store,
            map_name,
            strict=args.strict,
            overwrite=args.overwrite,
            workers=args.workers,
            options=options,
        )
        if stats.total == 0:
            continue
        causes = ", ".join(f"{k}:{v}" for k, v in stats.failure_causes.items())
        print(
            f"{map_name.value:<15} processed {stats.processed:>6} "
            f"unprocessed {stats.unprocessed:>4} {('(' + causes + ')') if causes else ''}"
        )
    _maybe_write_metrics(args)
    return 0


def _ingest_config(args: argparse.Namespace):
    """Build an :class:`~repro.dataset.ingest.IngestConfig` from CLI flags."""
    from repro.dataset.ingest import IngestConfig

    return IngestConfig(
        queue_size=args.queue_size,
        workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        fsync_every=args.fsync_every,
        max_files=args.max_files,
        strict=args.strict,
        update_index=not args.no_index,
    )


def _print_ingest_stats(stats) -> None:
    print(
        f"ingested {stats.ingested} files "
        f"({stats.processed} processed, {stats.failed} failed, "
        f"{stats.skipped} skipped, {stats.replayed} replayed from journal) "
        f"in {stats.run_seconds:.1f} s — {stats.sustained_fps:.1f} files/s"
    )
    if stats.recovery_seconds > 0:
        print(f"  recovery {stats.recovery_seconds:.3f} s, "
              f"{stats.checkpoints} checkpoints")


def cmd_ingest_run(args: argparse.Namespace) -> int:
    """Run the crash-safe ingestion daemon over a dataset directory."""
    from repro.dataset.ingest import IngestDaemon

    store = _new_store(args.dataset, args.sharded)
    maps = [args.map] if args.map else None
    daemon = IngestDaemon(store, _ingest_config(args))
    stats = daemon.run(maps)
    _print_ingest_stats(stats)
    _maybe_write_metrics(args)
    return 0


def cmd_ingest_resume(args: argparse.Namespace) -> int:
    """Resume an interrupted ingestion run (replays the journal first)."""
    from repro.dataset.ingest import resume_ingest
    from repro.errors import IngestError

    store = open_store(args.dataset)
    maps = [args.map] if args.map else None
    try:
        stats = resume_ingest(store, _ingest_config(args), maps)
    except IngestError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    _print_ingest_stats(stats)
    _maybe_write_metrics(args)
    return 0


def cmd_ingest_status(args: argparse.Namespace) -> int:
    """Show the last status the ingestion daemon published."""
    from repro.dataset.ingest import read_ingest_status

    status = read_ingest_status(args.dataset)
    if status is None:
        print(f"no ingest status under {args.dataset}", file=sys.stderr)
        return 1
    pid = status.get("pid")
    alive = False
    if isinstance(pid, int):
        try:
            os.kill(pid, 0)
            alive = True
        except PermissionError:
            alive = True  # exists, just not ours to signal
        except OSError:
            alive = False
    state = status.get("state", "?")
    liveness = "running" if alive and state != "done" else "not running"
    print(f"state {state} (pid {pid}, {liveness})")
    print(
        f"  processed {status.get('processed', 0)}  "
        f"failed {status.get('failed', 0)}  "
        f"skipped {status.get('skipped', 0)}  "
        f"replayed {status.get('replayed', 0)}"
    )
    pending_left = status.get("pending_left")
    if pending_left is not None:
        print(f"  pending {pending_left} of {status.get('pending_total', '?')} "
              f"(queue depth {status.get('queue_depth', 0)})")
    overall = status.get("overall_fps")
    recent = status.get("recent_fps")
    if isinstance(overall, (int, float)) and isinstance(recent, (int, float)):
        print(f"  throughput {overall:.1f} files/s overall, "
              f"{recent:.1f} files/s recent")
    return 0


def cmd_index_build(args: argparse.Namespace) -> int:
    """Build (or incrementally refresh) the columnar snapshot index."""
    import time

    from repro.dataset.index import build_index

    store = open_store(args.dataset)
    built_any = False
    if isinstance(store, ShardedDatasetStore):
        from repro.dataset.shards import compact_map_shards

        for map_name in [args.map] if args.map else list(MapName):
            if not any(True for _ in store.iter_refs(map_name, "yaml")):
                continue
            shard_stats = compact_map_shards(
                store,
                map_name,
                rebuild=args.rebuild,
                workers=args.workers,
                on_error=lambda ref, exc: print(
                    f"  skipping unreadable {ref.path.name}: {exc}", file=sys.stderr
                ),
            )
            built_any = True
            shards_total = len(shard_stats.built) + len(shard_stats.skipped)
            print(
                f"{map_name.value:<15} {shard_stats.rows:>6} rows across "
                f"{shards_total} shards ({len(shard_stats.built)} built, "
                f"{len(shard_stats.skipped)} skipped, "
                f"{len(shard_stats.removed)} removed) in {shard_stats.seconds:.2f} s"
            )
        _maybe_write_metrics(args)
        if not built_any:
            print("no processed snapshots to index", file=sys.stderr)
            return 1
        return 0
    for map_name in [args.map] if args.map else list(MapName):
        if not any(True for _ in store.iter_refs(map_name, "yaml")):
            continue
        started = time.perf_counter()
        _, stats = build_index(
            store,
            map_name,
            rebuild=args.rebuild,
            workers=args.workers,
            on_error=lambda ref, exc: print(
                f"  skipping unreadable {ref.path.name}: {exc}", file=sys.stderr
            ),
        )
        elapsed = time.perf_counter() - started
        built_any = True
        print(
            f"{map_name.value:<15} {stats.total:>6} rows "
            f"({stats.parsed} parsed, {stats.reused} reused, "
            f"{stats.unreadable} unreadable, {stats.removed} removed) "
            f"{stats.bytes_written / 1024:>9.1f} KiB in {elapsed:.2f} s"
        )
    _maybe_write_metrics(args)
    if not built_any:
        print("no processed snapshots to index", file=sys.stderr)
        return 1
    return 0


def cmd_index_status(args: argparse.Namespace) -> int:
    """Report each map's index: rows, size, and freshness."""
    from repro.dataset.index import index_status

    store = open_store(args.dataset)
    all_fresh = True
    shown = 0
    if isinstance(store, ShardedDatasetStore):
        from repro.dataset.shards import ShardManifest, verify_shards

        for map_name in [args.map] if args.map else list(MapName):
            has_yaml = any(True for _ in store.iter_refs(map_name, "yaml"))
            manifest = ShardManifest.load(store.shards_manifest_path(map_name))
            if not has_yaml and not manifest.shards:
                continue
            shown += 1
            entries = verify_shards(store, map_name)
            fresh = entries is not None
            listed = entries if entries is not None else sorted(
                manifest.shards.items()
            )
            rows = sum(entry.rows for _, entry in listed)
            skipped = sum(entry.skipped for _, entry in listed)
            size = sum(entry.index_size for _, entry in listed)
            verdict = "fresh" if fresh else "STALE"
            print(
                f"{map_name.value:<15} {verdict:<6} {rows:>6} rows "
                f"{skipped:>3} skipped {size / 1024:>9.1f} KiB "
                f"({len(listed)} shards)"
            )
            all_fresh = all_fresh and fresh
        if shown == 0:
            print("no dataset files found", file=sys.stderr)
            return 1
        return 0 if all_fresh else 1
    for map_name in [args.map] if args.map else list(MapName):
        has_yaml = any(True for _ in store.iter_refs(map_name, "yaml"))
        status = index_status(store, map_name)
        if not has_yaml and not status.exists:
            continue
        shown += 1
        verdict = "fresh" if status.fresh else "STALE"
        detail = "" if status.reason is None else f"  ({status.reason})"
        print(
            f"{map_name.value:<15} {verdict:<6} {status.rows:>6} rows "
            f"{status.skipped:>3} skipped {status.size_bytes / 1024:>9.1f} KiB"
            f"{detail}"
        )
        all_fresh = all_fresh and status.fresh
    if shown == 0:
        print("no dataset files found", file=sys.stderr)
        return 1
    return 0 if all_fresh else 1


def cmd_query(args: argparse.Namespace) -> int:
    """Scan the mapped index: time-range/node/link/load filters, no objects."""
    import csv
    from itertools import islice

    from repro.dataset.handles import resolve_read_handle
    from repro.dataset.query import ScanPredicate
    from repro.errors import QueryError

    store = open_store(args.dataset)
    engine = resolve_read_handle(
        store, args.map, backend=args.backend, use_mmap=not args.no_mmap
    )
    if engine is None:
        print(
            f"no fresh index for {args.map.value}; "
            f"run `repro-weather index build {args.dataset}` first",
            file=sys.stderr,
        )
        return 1
    try:
        predicate = ScanPredicate(
            start=_parse_when(args.start) if args.start else None,
            end=_parse_when(args.end) if args.end else None,
            node=args.node,
            link=(args.link[0], args.link[1]) if args.link else None,
            min_load=args.min_load,
            max_load=args.max_load,
        )
    except QueryError as exc:
        print(str(exc), file=sys.stderr)
        engine.close()
        return 1
    with engine:
        result = engine.scan(predicate)
        if args.format == "csv":
            writer = csv.writer(sys.stdout)
            writer.writerow(
                ["timestamp", "node_a", "label_a", "load_a",
                 "node_b", "label_b", "load_b"]
            )
            for record in result.records():
                writer.writerow(
                    [record.timestamp.isoformat(), record.node_a, record.label_a,
                     record.load_a, record.node_b, record.label_b, record.load_b]
                )
        else:
            source = "mmap" if engine.mapped else "buffered"
            print(
                f"{args.map.value}: {len(result):,} matching links over "
                f"{result.snapshot_count:,} snapshots "
                f"({engine.backend} backend, {source} source)"
            )
            peak = count = 0.0
            total = 0
            for batch in result.batches():
                for i in range(len(batch)):
                    high = max(float(batch.a_loads[i]), float(batch.b_loads[i]))
                    peak = max(peak, high)
                    count += high
                    total += 1
            if total:
                print(f"  peak-direction load: max {peak:.1f}%, "
                      f"mean {count / total:.1f}%")
            for record in islice(result.records(), args.limit):
                print(
                    f"  {record.timestamp.isoformat()}  "
                    f"{record.node_a}[{record.label_a}] {record.load_a:5.1f}% "
                    f"<-> {record.load_b:5.1f}% [{record.label_b}]{record.node_b}"
                )
            if len(result) > args.limit:
                print(
                    f"  ... {len(result) - args.limit:,} more "
                    f"(raise --limit or use --format csv)"
                )
    _maybe_write_metrics(args)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the versioned HTTP read API + live feed until interrupted."""
    from repro.errors import ServerError
    from repro.server import ServeOptions, create_server

    store = open_store(args.dataset)
    try:
        options = ServeOptions(
            host=args.host,
            port=args.port,
            backend=args.backend,
            use_mmap=not args.no_mmap,
            cache_entries=args.cache_entries,
            watch_interval=args.watch_interval,
            feed_ring_size=args.feed_ring_size,
            asgi=args.asgi,
        )
    except ServerError as exc:
        print(f"cannot start server: {exc}", file=sys.stderr)
        return 1
    if options.asgi:
        from repro.server.asgi import serve_asgi

        try:
            serve_asgi(store, options)
        except ServerError as exc:
            print(f"cannot start server: {exc}", file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
        return 0
    try:
        server = create_server(store, options)
    except (ServerError, OSError) as exc:
        print(f"cannot start server: {exc}", file=sys.stderr)
        return 1
    host, port = server.server_address[0], server.server_address[1]
    print(f"serving on http://{host}:{port}/ (Ctrl-C to stop)", file=sys.stderr)
    print(
        "stable surface under /v1 (unversioned paths answer with a "
        "Deprecation header); live feed at /v1/maps/<map>/events",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


def cmd_catalog(args: argparse.Namespace) -> int:
    """Print time frames and snapshot-distance stats (Figures 2 and 3)."""
    catalog = DatasetCatalog(open_store(args.dataset))
    for map_name in MapName:
        count = catalog.snapshot_count(map_name)
        if count == 0:
            continue
        print(f"{map_name.value} — {count} snapshots")
        for frame in catalog.time_frames(map_name):
            print(
                f"  {frame.start.isoformat()} .. {frame.end.isoformat()} "
                f"({frame.snapshot_count} snapshots)"
            )
        fraction = catalog.fraction_at_resolution(map_name)
        print(f"  at 5-minute resolution: {fraction * 100:.2f} %")
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    """Print Table 1 (from stored YAMLs) and Table 2 for a dataset."""
    store = open_store(args.dataset)
    snapshots = {}
    for map_name in MapName:
        refs = list(store.iter_refs(map_name, "yaml"))
        if not refs:
            continue
        last = refs[-1]
        snapshots[map_name] = snapshot_from_yaml(
            last.path.read_text(encoding="utf-8")
        )
    if snapshots:
        print(format_table1(build_table1(snapshots)))
        print()
    print(format_table2(build_table2(store)))
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    """Render one simulated snapshot to SVG."""
    simulator = BackboneSimulator()
    when = _parse_when(args.when) if args.when else REFERENCE_DATE
    snapshot = simulator.snapshot(args.map, when)
    svg = MapRenderer(seed=args.seed).render(snapshot)
    if args.output:
        Path(args.output).write_text(svg, encoding="utf-8")
        print(f"wrote {args.output} ({len(svg) / 1024:.0f} KiB)")
    else:
        sys.stdout.write(svg)
    return 0


def cmd_upgrade(args: argparse.Namespace) -> int:
    """Replay the Figure 6 AMS-IX upgrade case study."""
    simulator = BackboneSimulator()
    scenario = simulator.upgrade
    start = scenario.added_at - timedelta(days=10)
    end = scenario.activated_at + timedelta(days=14)
    snapshots = []
    current = start
    while current < end:
        snapshots.append(simulator.snapshot(scenario.map_name, current))
        current += timedelta(hours=args.step_hours)
    observations = track_peering_group(snapshots, scenario.peering)
    events = detect_upgrades(observations)
    peeringdb = SyntheticPeeringDB(simulator)
    correlated = correlate_with_peeringdb(events, peeringdb, scenario.peering)
    for item in correlated:
        event = item.event
        print(f"peering {item.peering}")
        print(f"  A link added      {event.added_at.isoformat()}")
        print(f"  B peeringdb       {item.peeringdb_updated.isoformat()} "
              f"({item.capacity_before_gbps} -> {item.capacity_after_gbps} Gbps)")
        print(f"  C link activated  {event.activated_at.isoformat()}")
        print(f"  links             {event.links_before} -> {event.links_after}")
        print(f"  per-link capacity {item.inferred_per_link_capacity_gbps:.0f} Gbps")
        print(f"  load              {event.load_before:.1f}% -> {event.load_after:.1f}% "
              f"(expected ratio {event.expected_load_ratio:.2f})")
    if not correlated:
        print("no correlated upgrade found", file=sys.stderr)
        return 1
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Run the Figure 4/5 analyses on a collected dataset directory."""
    import numpy

    from repro.analysis.degrees import degree_statistics
    from repro.analysis.imbalance import collect_imbalances
    from repro.analysis.loads import collect_load_samples, hour_of_day_bands
    from repro.analysis.stats import fraction_at_most
    from repro.dataset.loader import load_all

    store = open_store(args.dataset)
    snapshots = load_all(store, args.map)
    if not snapshots:
        print(f"no processed snapshots for {args.map.value} in {args.dataset}",
              file=sys.stderr)
        return 1

    print(f"{args.map.title}: {len(snapshots)} snapshots "
          f"({snapshots[0].timestamp.isoformat()} → "
          f"{snapshots[-1].timestamp.isoformat()})")

    stats = degree_statistics(snapshots[-1])
    print(f"\nrouter degrees (latest snapshot):")
    print(f"  routers {stats.count}, mean {stats.mean:.1f}, max {stats.max}")
    print(f"  single-link {stats.fraction_single_link * 100:.0f}%, "
          f">20 links {stats.fraction_over_20 * 100:.0f}%")

    samples = collect_load_samples(snapshots)
    print(f"\nlink loads ({len(samples):,} directed samples):")
    print(f"  <=33%: {fraction_at_most(samples.all_loads, 33) * 100:.0f}%   "
          f">60%: {(1 - fraction_at_most(samples.all_loads, 60)) * 100:.1f}%")
    if samples.internal and samples.external:
        print(f"  internal mean {numpy.mean(samples.internal):.1f}%  "
              f"external mean {numpy.mean(samples.external):.1f}%")
    if len({s.timestamp.hour for s in snapshots}) >= 12:
        bands = hour_of_day_bands(samples)
        print(f"  median trough {bands.median_trough_hour():02d}:00, "
              f"peak {bands.median_peak_hour():02d}:00")

    imbalances = collect_imbalances(snapshots)
    if imbalances.all_values:
        print(f"\nECMP imbalance ({len(imbalances.all_values):,} group samples):")
        print(f"  <=1%: {imbalances.fraction_within(1.0) * 100:.0f}%   "
              f"external <=2%: {imbalances.fraction_within(2.0, 'external') * 100:.0f}%")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Correlate the map's structural changes with the status feed."""
    from repro.analysis.infrastructure import infrastructure_evolution, structural_events
    from repro.statusfeed.correlate import correlate_events
    from repro.statusfeed.feed import SyntheticStatusFeed

    simulator = BackboneSimulator()
    feed = SyntheticStatusFeed(simulator)
    evolution = infrastructure_evolution(
        simulator, args.map, interval=timedelta(hours=12)
    )
    changes = structural_events(
        evolution.routers, min_delta=2.0, pairing_window=timedelta(days=45)
    )
    report = correlate_events(changes, feed)
    print(f"{args.map.title}: {report.total} structural changes, "
          f"{report.explained_fraction * 100:.0f}% explained by the status feed")
    for item in report.explained:
        titles = "; ".join(match.title for match in item.matches[:2])
        print(f"  {item.change.start.date()}  {item.change.kind:<18} → {titles}")
    for item in report.unexplained:
        print(f"  {item.change.start.date()}  {item.change.kind:<18} → UNEXPLAINED")
    return 0


def cmd_changelog(args: argparse.Namespace) -> int:
    """Narrate a map's changes over a simulated window."""
    from repro.analysis.narrative import build_changelog
    from repro.peeringdb.feed import SyntheticPeeringDB
    from repro.statusfeed.feed import SyntheticStatusFeed

    simulator = BackboneSimulator()
    start = _parse_when(args.start)
    end = _parse_when(args.end)
    step = max(timedelta(hours=6), (end - start) / max(1, args.samples - 1))
    snapshots = []
    current = start
    while current <= end:
        snapshots.append(simulator.snapshot(args.map, current))
        current += step
    changelog = build_changelog(
        snapshots,
        peeringdb=SyntheticPeeringDB(simulator),
        status_feed=SyntheticStatusFeed(simulator),
    )
    print(changelog.render())
    return 0


def cmd_archive(args: argparse.Namespace) -> int:
    """Pack a dataset into per-map, per-month bundles — or unpack one."""
    from repro.dataset.archive import pack_dataset, unpack_archive

    store = open_store(args.dataset)
    if args.unpack:
        count = unpack_archive(args.unpack, store)
        print(f"unpacked {count} files into {args.dataset}")
        return 0
    maps = [args.map] if args.map else None
    archives = pack_dataset(store, args.output, maps=maps)
    if not archives:
        print("nothing to pack", file=sys.stderr)
        return 1
    for info in archives:
        print(
            f"{info.path.name:<34} {info.members:>6} files "
            f"{info.size_bytes / 1024:>9.1f} KiB"
        )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Validate a dataset directory's files and cross-check extraction."""
    from repro.dataset.validate import validate_dataset

    reports = validate_dataset(
        open_store(args.dataset), cross_check_fraction=args.cross_check
    )
    if not reports:
        print("no dataset files found", file=sys.stderr)
        return 1
    all_ok = True
    for map_name, report in reports.items():
        verdict = "ok" if report.ok else "PROBLEMS"
        print(
            f"{map_name.value:<15} {verdict:<9} yaml {report.yaml_files:>5} "
            f"svg {report.svg_files:>5} schema-fail {report.schema_failures} "
            f"cross-checked {report.cross_checked} "
            f"(failed {report.cross_check_failures}) "
            f"unprocessed-svg {report.unprocessed_svg}"
        )
        for problem in report.problems:
            print(f"    {problem}")
        all_ok = all_ok and report.ok
    return 0 if all_ok else 1


def cmd_report(args: argparse.Namespace) -> int:
    """Write a markdown + charts report bundle for a dataset."""
    from repro.reports.builder import build_report

    target = build_report(args.dataset, args.output, detail_map=args.map)
    print(f"wrote {target}")
    return 0


def cmd_crawl(args: argparse.Namespace) -> int:
    """Poll the simulated weathermap website like the paper's crawler."""
    from repro.website.site import WeathermapWebsite
    from repro.website.webcollector import PollingCollector

    simulator = BackboneSimulator()
    site = WeathermapWebsite(simulator)
    collector = PollingCollector(
        site, _new_store(args.output, args.sharded), backfill=not args.no_backfill
    )
    maps = [args.map] if args.map else None
    stats = collector.run(_parse_when(args.start), _parse_when(args.end), maps=maps)
    print(f"polls {stats.polls}, fetched {stats.fetched}, "
          f"failed {stats.failed_polls}, backfilled {stats.backfilled}, "
          f"duplicates {stats.duplicates_skipped}")
    for map_name, count in stats.per_map.items():
        print(f"  {map_name.value:<15} {count} documents")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Export processed snapshots as GraphML or CSV.

    Default: the latest snapshot, to stdout or ``--output``.  With
    ``--output-dir``: every snapshot, one file per timestamp, loading the
    series through the parallel loader when ``--workers`` asks for it.
    """
    from repro.dataset.loader import latest_snapshot, load_all
    from repro.dataset.store import format_timestamp
    from repro.topology.export import to_adjacency_csv, to_graphml

    store = open_store(args.dataset)
    export = to_graphml if args.format == "graphml" else to_adjacency_csv
    if args.output_dir:
        snapshots = load_all(store, args.map, workers=args.workers)
        if not snapshots:
            print(f"no processed snapshots for {args.map.value}", file=sys.stderr)
            return 1
        target = Path(args.output_dir)
        target.mkdir(parents=True, exist_ok=True)
        total = 0
        for snapshot in snapshots:
            name = (
                f"{args.map.value}-{format_timestamp(snapshot.timestamp)}"
                f".{args.format}"
            )
            total += len(export(snapshot, target / name))
        print(
            f"wrote {len(snapshots)} {args.format} files "
            f"({total / 1024:.1f} KiB) to {target}"
        )
        _maybe_write_metrics(args)
        return 0
    snapshot = latest_snapshot(store, args.map)
    if snapshot is None:
        print(f"no processed snapshots for {args.map.value}", file=sys.stderr)
        return 1
    text = export(snapshot, args.output)
    if args.output:
        print(f"wrote {args.output} ({len(text) / 1024:.1f} KiB)")
    else:
        sys.stdout.write(text)
    _maybe_write_metrics(args)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Render a saved metrics snapshot as Prometheus exposition or JSON."""
    from repro.errors import TelemetryError
    from repro.telemetry import (
        read_snapshot_file,
        snapshot_to_json,
        snapshot_to_prometheus,
    )

    try:
        snapshot = read_snapshot_file(args.snapshot)
    except TelemetryError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.format == "prom":
        text = snapshot_to_prometheus(snapshot)
    else:
        text = snapshot_to_json(snapshot)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run the project-native static-analysis rule pack.

    Exit codes: 0 clean, 1 findings, 2 the checker itself failed.
    """
    import traceback

    from repro.devtools import (
        default_config,
        render_human,
        render_json,
        run_checks,
    )

    try:
        config = default_config(
            root=Path(args.root) if args.root else None,
            update_api_snapshot=args.update_api_snapshot,
        )
        result = run_checks(config)
    except Exception as exc:
        traceback.print_exception(exc)
        return 2
    if args.update_api_snapshot and config.api_snapshot is not None:
        print(f"wrote {config.api_snapshot}", file=sys.stderr)
    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        print(render_human(result))
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-weather",
        description="OVH Weather dataset reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="simulate a collection run")
    generate.add_argument("output", help="dataset directory to create")
    generate.add_argument("--start", required=True, help="ISO start time")
    generate.add_argument("--end", required=True, help="ISO end time")
    generate.add_argument("--map", type=_map_argument, default=None)
    generate.add_argument("--interval", type=int, default=5, help="minutes between snapshots")
    generate.add_argument(
        "--sharded",
        action="store_true",
        help="mark the dataset for the sharded (per-day index) layout",
    )
    _add_common(generate)
    generate.set_defaults(handler=cmd_generate)

    process = subparsers.add_parser("process", help="SVG → YAML extraction")
    process.add_argument("dataset", help="dataset directory")
    process.add_argument("--strict", action="store_true")
    process.add_argument(
        "--workers",
        type=_workers_argument,
        default=None,
        help="worker processes for the extraction (default: serial; "
        "0 or 'auto' means one per CPU core)",
    )
    process.add_argument(
        "--overwrite",
        action="store_true",
        help="re-process files whose YAML already exists "
        "(also invalidates the incremental manifest)",
    )
    process.add_argument(
        "--no-fast-path",
        dest="fast_path",
        action="store_false",
        help="force the faithful DOM parse instead of the fused streaming "
        "pass (identical output; for timing comparisons and debugging)",
    )
    process.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's telemetry as a JSON snapshot to this path",
    )
    process.set_defaults(handler=cmd_process)

    ingest = subparsers.add_parser(
        "ingest", help="run or resume the crash-safe ingestion daemon"
    )
    ingest_sub = ingest.add_subparsers(dest="ingest_command", required=True)

    def _add_ingest_knobs(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("dataset", help="dataset directory")
        sub.add_argument("--map", type=_map_argument, default=None)
        sub.add_argument(
            "--workers", type=int, default=1,
            help="parser threads feeding the single writer (default 1)",
        )
        sub.add_argument(
            "--queue-size", type=int, default=256,
            help="bound on the work and result queues (default 256)",
        )
        sub.add_argument(
            "--checkpoint-every", type=int, default=512,
            help="files between manifest folds + shard compactions (default 512)",
        )
        sub.add_argument(
            "--fsync-every", type=int, default=64,
            help="files between YAML/journal durability batches (default 64)",
        )
        sub.add_argument(
            "--max-files", type=int, default=None,
            help="stop after ingesting this many files (for paced runs)",
        )
        sub.add_argument("--strict", action="store_true")
        sub.add_argument(
            "--no-index",
            action="store_true",
            help="skip index maintenance entirely (compact later with "
            "`index build`)",
        )
        sub.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help="write the run's telemetry as a JSON snapshot to this path",
        )

    ingest_run = ingest_sub.add_parser(
        "run", help="ingest everything pending (recovers first if needed)"
    )
    _add_ingest_knobs(ingest_run)
    ingest_run.add_argument(
        "--sharded",
        action="store_true",
        help="mark the dataset for the sharded (per-day index) layout",
    )
    ingest_run.set_defaults(handler=cmd_ingest_run)
    ingest_resume = ingest_sub.add_parser(
        "resume", help="resume an interrupted run (requires prior state)"
    )
    _add_ingest_knobs(ingest_resume)
    ingest_resume.set_defaults(handler=cmd_ingest_resume)
    ingest_status = ingest_sub.add_parser(
        "status", help="show the daemon's last published status"
    )
    ingest_status.add_argument("dataset", help="dataset directory")
    ingest_status.set_defaults(handler=cmd_ingest_status)

    index = subparsers.add_parser(
        "index", help="build or inspect the columnar snapshot index"
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    index_build = index_sub.add_parser(
        "build", help="compact each map's YAML series into its index"
    )
    index_build.add_argument("dataset", help="dataset directory")
    index_build.add_argument("--map", type=_map_argument, default=None)
    index_build.add_argument(
        "--rebuild",
        action="store_true",
        help="discard any existing index instead of refreshing incrementally",
    )
    index_build.add_argument(
        "--workers",
        type=_workers_argument,
        default=None,
        help="worker processes for parsing new YAML files "
        "(default: serial; 0 or 'auto' means one per CPU core)",
    )
    index_build.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's telemetry as a JSON snapshot to this path",
    )
    index_build.set_defaults(handler=cmd_index_build)
    index_status_parser = index_sub.add_parser(
        "status", help="report index freshness per map"
    )
    index_status_parser.add_argument("dataset", help="dataset directory")
    index_status_parser.add_argument("--map", type=_map_argument, default=None)
    index_status_parser.set_defaults(handler=cmd_index_status)

    query = subparsers.add_parser(
        "query", help="zero-copy scans over the columnar index"
    )
    query.add_argument("dataset", help="dataset directory")
    query.add_argument("--map", type=_map_argument, default=MapName.EUROPE)
    query.add_argument("--start", default=None, help="ISO lower bound (inclusive)")
    query.add_argument("--end", default=None, help="ISO upper bound (exclusive)")
    query.add_argument("--node", default=None, help="keep links touching this node")
    query.add_argument(
        "--link",
        nargs=2,
        default=None,
        metavar=("NODE_A", "NODE_B"),
        help="keep links between these two nodes (either orientation)",
    )
    query.add_argument(
        "--min-load", type=float, default=None,
        help="keep links whose busier direction is at least this load (%%)",
    )
    query.add_argument(
        "--max-load", type=float, default=None,
        help="keep links whose busier direction is at most this load (%%)",
    )
    query.add_argument(
        "--backend",
        choices=("auto", "numpy", "memoryview"),
        default="auto",
        help="column-view backend (default: numpy when available)",
    )
    query.add_argument(
        "--no-mmap",
        action="store_true",
        help="read the index with buffered I/O instead of mapping it",
    )
    query.add_argument(
        "--limit", type=int, default=20,
        help="matching links to print in table format (default 20)",
    )
    query.add_argument(
        "--format",
        choices=("table", "csv"),
        default="table",
        help="human table with a summary (default) or full CSV on stdout",
    )
    query.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's telemetry as a JSON snapshot to this path",
    )
    query.set_defaults(handler=cmd_query)

    serve = subparsers.add_parser(
        "serve", help="run the cached HTTP read API over a dataset"
    )
    serve.add_argument("dataset", help="dataset directory")
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8080,
        help="bind port; 0 picks a free one (default 8080)",
    )
    serve.add_argument(
        "--backend",
        choices=("auto", "numpy", "memoryview"),
        default="auto",
        help="column-view backend (default: numpy when available)",
    )
    serve.add_argument(
        "--no-mmap",
        action="store_true",
        help="read indexes with buffered I/O instead of mapping them",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=256,
        help="response-cache capacity in entries (default 256)",
    )
    serve.add_argument(
        "--watch-interval", type=float, default=5.0,
        help="seconds between generation-feed watcher ticks (default 5)",
    )
    serve.add_argument(
        "--feed-ring-size", type=int, default=256,
        help="per-map feed replay-ring capacity (default 256)",
    )
    serve.add_argument(
        "--asgi",
        action="store_true",
        help="serve through the ASGI adapter under uvicorn "
        "(pip install repro[asgi])",
    )
    serve.set_defaults(handler=cmd_serve)

    catalog = subparsers.add_parser("catalog", help="collection quality stats")
    catalog.add_argument("dataset", help="dataset directory")
    catalog.set_defaults(handler=cmd_catalog)

    tables = subparsers.add_parser("tables", help="print Tables 1 and 2")
    tables.add_argument("dataset", help="dataset directory")
    tables.set_defaults(handler=cmd_tables)

    render = subparsers.add_parser("render", help="render one snapshot SVG")
    render.add_argument("--map", type=_map_argument, default=MapName.EUROPE)
    render.add_argument("--when", default=None, help="ISO timestamp")
    render.add_argument("--output", default=None, help="output SVG path")
    _add_common(render)
    render.set_defaults(handler=cmd_render)

    upgrade = subparsers.add_parser("upgrade", help="Figure 6 case study")
    upgrade.add_argument("--step-hours", type=int, default=6)
    _add_common(upgrade)
    upgrade.set_defaults(handler=cmd_upgrade)

    analyze = subparsers.add_parser(
        "analyze", help="Figure 4/5 analyses over a collected dataset"
    )
    analyze.add_argument("dataset", help="dataset directory")
    analyze.add_argument("--map", type=_map_argument, default=MapName.EUROPE)
    analyze.set_defaults(handler=cmd_analyze)

    status = subparsers.add_parser(
        "status", help="correlate map changes with the provider status feed"
    )
    status.add_argument("--map", type=_map_argument, default=MapName.EUROPE)
    _add_common(status)
    status.set_defaults(handler=cmd_status)

    crawl = subparsers.add_parser(
        "crawl", help="poll the simulated weathermap website into a dataset"
    )
    crawl.add_argument("output", help="dataset directory to fill")
    crawl.add_argument("--start", required=True, help="ISO start time")
    crawl.add_argument("--end", required=True, help="ISO end time")
    crawl.add_argument("--map", type=_map_argument, default=None)
    crawl.add_argument(
        "--no-backfill",
        action="store_true",
        help="skip recovering missed ticks from the hourly archive",
    )
    crawl.add_argument(
        "--sharded",
        action="store_true",
        help="mark the dataset for the sharded (per-day index) layout",
    )
    _add_common(crawl)
    crawl.set_defaults(handler=cmd_crawl)

    export = subparsers.add_parser(
        "export", help="export the latest snapshot as GraphML or CSV"
    )
    export.add_argument("dataset", help="dataset directory")
    export.add_argument("--map", type=_map_argument, default=MapName.EUROPE)
    export.add_argument("--format", choices=("graphml", "csv"), default="graphml")
    export.add_argument("--output", default=None)
    export.add_argument(
        "--output-dir",
        default=None,
        help="export the whole snapshot series into this directory "
        "instead of just the latest snapshot",
    )
    export.add_argument(
        "--workers",
        type=_workers_argument,
        default=None,
        help="worker processes for loading the series with --output-dir "
        "(default: serial; 0 or 'auto' means one per CPU core)",
    )
    export.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's telemetry as a JSON snapshot to this path",
    )
    export.set_defaults(handler=cmd_export)

    changelog = subparsers.add_parser(
        "changelog", help="narrate a map's changes over a window"
    )
    changelog.add_argument("--map", type=_map_argument, default=MapName.EUROPE)
    changelog.add_argument("--start", required=True, help="ISO start time")
    changelog.add_argument("--end", required=True, help="ISO end time")
    changelog.add_argument("--samples", type=int, default=60)
    _add_common(changelog)
    changelog.set_defaults(handler=cmd_changelog)

    archive = subparsers.add_parser(
        "archive", help="pack a dataset into distribution bundles (or unpack one)"
    )
    archive.add_argument("dataset", help="dataset directory")
    archive.add_argument("--output", default="bundles", help="bundle directory")
    archive.add_argument("--map", type=_map_argument, default=None)
    archive.add_argument("--unpack", default=None, help="bundle to unpack instead")
    archive.set_defaults(handler=cmd_archive)

    validate = subparsers.add_parser(
        "validate", help="validate a dataset's files and cross-check extraction"
    )
    validate.add_argument("dataset", help="dataset directory")
    validate.add_argument(
        "--cross-check",
        type=float,
        default=0.1,
        help="fraction of snapshots to re-extract from SVG (default 0.1)",
    )
    validate.set_defaults(handler=cmd_validate)

    metrics = subparsers.add_parser(
        "metrics", help="render a saved telemetry snapshot"
    )
    metrics.add_argument("snapshot", help="JSON snapshot written by --metrics-out")
    metrics.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="Prometheus text exposition (default) or structured JSON",
    )
    metrics.add_argument("--output", default=None, help="write here instead of stdout")
    metrics.set_defaults(handler=cmd_metrics)

    check = subparsers.add_parser(
        "check", help="run the project's static-analysis rule pack"
    )
    check.add_argument(
        "--root",
        default=None,
        help="repository root (default: discovered from the working "
        "directory or the installed package)",
    )
    check.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    check.add_argument(
        "--update-api-snapshot",
        action="store_true",
        help="rewrite api_surface.json from the current repro.__all__ "
        "instead of diffing against it (REP006)",
    )
    check.set_defaults(handler=cmd_check)

    report = subparsers.add_parser(
        "report", help="write a markdown + charts report for a dataset"
    )
    report.add_argument("dataset", help="dataset directory")
    report.add_argument("--output", default="report", help="output directory")
    report.add_argument("--map", type=_map_argument, default=MapName.EUROPE)
    report.set_defaults(handler=cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
