"""Command-line interface: ``repro-weather``."""

from repro.cli.main import main

__all__ = ["main"]
