"""Shared constants for the OVH Weather dataset reproduction.

Values here come straight from the paper: the four backbone maps, the 5-minute
snapshot cadence, the reference date of Tables 1 and 2, and the per-map element
counts the paper reports on that date (used as calibration targets by the
simulator and as expected rows by the benchmark harness).
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone
from enum import Enum


class MapName(str, Enum):
    """The four backbone weather maps in the OVH Weather dataset."""

    EUROPE = "europe"
    WORLD = "world"
    NORTH_AMERICA = "north-america"
    ASIA_PACIFIC = "asia-pacific"

    @property
    def title(self) -> str:
        """Human-readable map title as used in the paper's tables."""
        return _MAP_TITLES[self]


_MAP_TITLES = {
    MapName.EUROPE: "Europe",
    MapName.WORLD: "World",
    MapName.NORTH_AMERICA: "North America",
    MapName.ASIA_PACIFIC: "Asia Pacific",
}

#: Snapshot cadence of the OVH Network Weathermap (Section 4).
SNAPSHOT_INTERVAL = timedelta(minutes=5)

#: Start of the collection campaign ("We started collecting ... in July 2020").
COLLECTION_START = datetime(2020, 7, 1, tzinfo=timezone.utc)

#: Reference date of Tables 1 and 2 ("on the 12th of September 2022").
REFERENCE_DATE = datetime(2022, 9, 12, tzinfo=timezone.utc)

#: Date at which the paper's authors fixed their collection pipeline
#: ("In May 2022, we identified and fixed an operational issue").
COLLECTION_FIX_DATE = datetime(2022, 5, 1, tzinfo=timezone.utc)

#: Table 1 — routers / internal links / external links per map on REFERENCE_DATE.
TABLE1_PAPER = {
    MapName.EUROPE: (113, 744, 265),
    MapName.WORLD: (16, 76, 0),
    MapName.NORTH_AMERICA: (60, 407, 214),
    MapName.ASIA_PACIFIC: (23, 96, 39),
}

#: Table 1 totals; routers shared between maps are counted once.
TABLE1_PAPER_TOTAL = (181, 1186, 518)

#: Table 2 — (# SVG files, SVG GiB, # YAML files, YAML GiB) per map.
TABLE2_PAPER = {
    MapName.EUROPE: (214_426, 161.39, 214_340, 20.16),
    MapName.WORLD: (111_459, 6.22, 111_431, 0.83),
    MapName.NORTH_AMERICA: (107_088, 50.64, 107_024, 6.23),
    MapName.ASIA_PACIFIC: (109_076, 9.67, 109_024, 1.24),
}

#: Table 2 totals.
TABLE2_PAPER_TOTAL = (542_049, 227.93, 541_819, 28.46)

#: Average number of parallel links between connected router pairs reported in
#: Section 5 for the Europe map on the reference date.
PAPER_MEAN_PARALLEL_LINKS = 6.58

#: Loads are link utilisation percentages, inclusive bounds (sanity check #1).
LOAD_MIN = 0
LOAD_MAX = 100

#: Algorithm 2 attribution threshold: "the distance between the link end and
#: its label is below a defined threshold (i.e., a few pixels)".
LABEL_DISTANCE_THRESHOLD = 40.0
