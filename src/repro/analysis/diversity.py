"""Path diversity among core routers.

Section 5 observes that "the network topology thus presents path
diversity among the core routers, which can be leveraged for instance by
traffic flowing between datacenters".  This module quantifies that: the
number of edge-disjoint paths between router pairs on the multigraph
(every parallel link is a usable edge), computed with networkx max-flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx

from repro.topology.graph import node_degrees, to_networkx
from repro.topology.model import MapSnapshot


@dataclass(frozen=True, slots=True)
class DiversityReport:
    """Edge-disjoint path statistics over sampled core router pairs."""

    pairs_sampled: int
    mean_disjoint_paths: float
    min_disjoint_paths: int
    max_disjoint_paths: int
    fraction_multipath: float  # pairs with >= 2 edge-disjoint paths


def _router_subgraph(snapshot: MapSnapshot) -> networkx.MultiGraph:
    """The OVH-internal topology: routers and internal links only."""
    graph = to_networkx(snapshot)
    peerings = [node.name for node in snapshot.peerings]
    graph.remove_nodes_from(peerings)
    return graph


def edge_disjoint_paths(snapshot: MapSnapshot, source: str, target: str) -> int:
    """Edge-disjoint internal paths between two routers.

    Parallel links each contribute a path, matching the ECMP view of the
    network.  Returns 0 when either router is absent or disconnected.
    """
    graph = _router_subgraph(snapshot)
    if source not in graph or target not in graph:
        return 0
    # Max-flow with unit capacities equals the number of edge-disjoint
    # paths; collapse the multigraph into integer capacities.
    flat = networkx.Graph()
    flat.add_nodes_from(graph.nodes)
    for a, b in graph.edges():
        if flat.has_edge(a, b):
            flat[a][b]["capacity"] += 1
        else:
            flat.add_edge(a, b, capacity=1)
    try:
        value, _ = networkx.maximum_flow(flat, source, target)
    except networkx.NetworkXError:
        return 0
    return int(value)


def core_path_diversity(
    snapshot: MapSnapshot,
    min_degree: int = 20,
    max_pairs: int = 40,
) -> DiversityReport:
    """Diversity over the heavily connected ("core") routers.

    Args:
        snapshot: the map to analyse.
        min_degree: routers with at least this many links count as core
            (Figure 4c's ">20 links" population).
        max_pairs: cap on sampled pairs (max-flow is not free).
    """
    degrees = node_degrees(snapshot, routers_only=True)
    core = sorted(
        (name for name, degree in degrees.items() if degree > min_degree),
        key=lambda name: -degrees[name],
    )
    pairs: list[tuple[str, str]] = []
    for index, source in enumerate(core):
        for target in core[index + 1:]:
            pairs.append((source, target))
            if len(pairs) >= max_pairs:
                break
        if len(pairs) >= max_pairs:
            break

    if not pairs:
        return DiversityReport(0, 0.0, 0, 0, 0.0)

    counts = [
        edge_disjoint_paths(snapshot, source, target) for source, target in pairs
    ]
    return DiversityReport(
        pairs_sampled=len(counts),
        mean_disjoint_paths=sum(counts) / len(counts),
        min_disjoint_paths=min(counts),
        max_disjoint_paths=max(counts),
        fraction_multipath=sum(1 for c in counts if c >= 2) / len(counts),
    )
