"""Congestion episodes.

Section 5 reads the load CDF as evidence that "congestion inside the
network happens occasionally": the excess capacity absorbs most demand,
but a small fraction of directed links do run hot.  This module finds
those episodes — maximal runs of consecutive snapshots where one directed
link stays at or above a load threshold — and summarises how rare and
short they are.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Iterable

import numpy

from repro.topology.model import MapSnapshot

#: Loads at or above this are treated as congested (the weathermap's red
#: band starts at 85 %).
CONGESTION_THRESHOLD = 85.0


@dataclass(frozen=True, slots=True)
class CongestionEpisode:
    """One directed link staying hot over consecutive snapshots."""

    source: str
    target: str
    label: str
    start: datetime
    end: datetime
    peak_load: float
    samples: int

    @property
    def duration(self) -> timedelta:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class CongestionSummary:
    """Aggregate congestion statistics over an observation window."""

    episodes: tuple[CongestionEpisode, ...]
    snapshots: int
    directed_samples: int
    congested_samples: int

    @property
    def congested_fraction(self) -> float:
        """Fraction of directed samples at or above the threshold."""
        if self.directed_samples == 0:
            return 0.0
        return self.congested_samples / self.directed_samples

    @property
    def longest(self) -> CongestionEpisode | None:
        if not self.episodes:
            return None
        return max(self.episodes, key=lambda e: e.duration)


def _directed_key(link, source: str) -> tuple[str, str, str]:
    target = link.a.node if link.b.node == source else link.b.node
    return (source, target, link.end_for(source).label)


def find_congestion(
    snapshots: Iterable[MapSnapshot],
    threshold: float = CONGESTION_THRESHOLD,
    min_samples: int = 2,
) -> CongestionSummary:
    """Find congestion episodes across an ordered snapshot stream.

    Args:
        snapshots: the observation window, any order (sorted internally).
        threshold: congested means load >= threshold.
        min_samples: runs shorter than this many consecutive snapshots
            are ignored (a single hot sample is noise, not congestion).
    """
    ordered = sorted(snapshots, key=lambda snapshot: snapshot.timestamp)
    open_runs: dict[tuple[str, str, str], list] = {}
    episodes: list[CongestionEpisode] = []
    directed_samples = 0
    congested_samples = 0

    def close(key, run) -> None:
        if len(run) >= min_samples:
            episodes.append(
                CongestionEpisode(
                    source=key[0],
                    target=key[1],
                    label=key[2],
                    start=run[0][0],
                    end=run[-1][0],
                    peak_load=max(load for _, load in run),
                    samples=len(run),
                )
            )

    for snapshot in ordered:
        hot_now: set[tuple[str, str, str]] = set()
        for link in snapshot.links:
            for source in link.nodes:
                load = link.load_from(source)
                directed_samples += 1
                if load >= threshold:
                    congested_samples += 1
                    key = _directed_key(link, source)
                    hot_now.add(key)
                    open_runs.setdefault(key, []).append(
                        (snapshot.timestamp, load)
                    )
        # Runs not continued by this snapshot close.
        for key in list(open_runs):
            if key not in hot_now:
                close(key, open_runs.pop(key))
    for key, run in open_runs.items():
        close(key, run)

    episodes.sort(key=lambda episode: episode.start)
    return CongestionSummary(
        episodes=tuple(episodes),
        snapshots=len(ordered),
        directed_samples=directed_samples,
        congested_samples=congested_samples,
    )


def congestion_rate_by_hour(
    snapshots: Iterable[MapSnapshot], threshold: float = CONGESTION_THRESHOLD
) -> dict[int, float]:
    """Fraction of directed samples congested, per hour of day.

    Congestion follows the diurnal cycle: evenings run hot far more often
    than the 3 a.m. trough.
    """
    totals: dict[int, int] = {}
    hot: dict[int, int] = {}
    for snapshot in snapshots:
        hour = snapshot.timestamp.hour
        for _, _, load in snapshot.iter_loads():
            totals[hour] = totals.get(hour, 0) + 1
            if load >= threshold:
                hot[hour] = hot.get(hour, 0) + 1
    return {
        hour: hot.get(hour, 0) / count for hour, count in sorted(totals.items())
    }
