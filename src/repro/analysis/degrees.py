"""Router node-degree distribution (Figure 4c).

The degree of a router counts every link connected to it, *including all
parallel links*.  The paper's two headline observations: more than 20 % of
Europe-map routers have a single link (stub routers whose other
connections fall outside the backbone maps), and more than 20 % have over
20 links (core routers with heavy parallelism).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy

from repro.analysis.stats import ccdf
from repro.topology.graph import node_degrees
from repro.topology.model import MapSnapshot


@dataclass(frozen=True, slots=True)
class DegreeStatistics:
    """Summary of one snapshot's router degree distribution."""

    count: int
    mean: float
    median: float
    max: int
    fraction_single_link: float
    fraction_over_20: float


def degree_ccdf(snapshot: MapSnapshot) -> tuple[numpy.ndarray, numpy.ndarray]:
    """Degree CCDF over the snapshot's OVH routers — the Figure 4c curve."""
    degrees = list(node_degrees(snapshot, routers_only=True).values())
    return ccdf(degrees)


def degree_statistics(snapshot: MapSnapshot) -> DegreeStatistics:
    """The headline degree numbers the paper quotes."""
    degrees = numpy.array(
        list(node_degrees(snapshot, routers_only=True).values()), dtype=float
    )
    if degrees.size == 0:
        return DegreeStatistics(0, 0.0, 0.0, 0, 0.0, 0.0)
    return DegreeStatistics(
        count=int(degrees.size),
        mean=float(degrees.mean()),
        median=float(numpy.median(degrees)),
        max=int(degrees.max()),
        fraction_single_link=float(numpy.mean(degrees <= 1)),
        fraction_over_20=float(numpy.mean(degrees > 20)),
    )
