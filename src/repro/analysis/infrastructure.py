"""Network infrastructure evolution (Figures 4a and 4b).

Produces the router-count and internal/external link-count time series for
one map, plus a structural-event classifier that recovers the paper's
narrative: *increase then decrease* sequences read as make-before-break
upgrades, *decrease then increase* as forced maintenance or failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Callable, Iterable

from repro.analysis.timeseries import Step, TimeSeries, detect_steps
from repro.constants import MapName
from repro.errors import AnalysisError
from repro.simulation.network import BackboneSimulator
from repro.topology.model import MapSnapshot


@dataclass(frozen=True)
class InfrastructureEvolution:
    """The three evolution series of one map."""

    map_name: MapName
    routers: TimeSeries
    internal_links: TimeSeries
    external_links: TimeSeries


def infrastructure_evolution(
    simulator: BackboneSimulator,
    map_name: MapName,
    start: datetime | None = None,
    end: datetime | None = None,
    interval: timedelta = timedelta(hours=6),
) -> InfrastructureEvolution:
    """Sample the evolution counts over a window (fast: O(log n) per tick).

    Sampling every few hours is lossless for these figures — structural
    events are rare compared to the five-minute snapshot cadence.
    """
    start = start if start is not None else simulator.config.window_start
    end = end if end is not None else simulator.config.window_end
    times: list[datetime] = []
    router_counts: list[float] = []
    internal_counts: list[float] = []
    external_counts: list[float] = []
    current = start
    while current <= end:
        routers, internal, external = simulator.counts(map_name, current)
        times.append(current)
        router_counts.append(routers)
        internal_counts.append(internal)
        external_counts.append(external)
        current += interval
    if times[-1] != end:
        # Always sample the window end: callers read values[-1] as "the
        # state at the end", which must not depend on interval alignment.
        routers, internal, external = simulator.counts(map_name, end)
        times.append(end)
        router_counts.append(routers)
        internal_counts.append(internal)
        external_counts.append(external)
    return InfrastructureEvolution(
        map_name=map_name,
        routers=TimeSeries(tuple(times), tuple(router_counts)),
        internal_links=TimeSeries(tuple(times), tuple(internal_counts)),
        external_links=TimeSeries(tuple(times), tuple(external_counts)),
    )


def evolution_from_snapshots(snapshots: Iterable[MapSnapshot]) -> InfrastructureEvolution:
    """Same series, computed from stored snapshots (the YAML path)."""
    ordered = sorted(snapshots, key=lambda snapshot: snapshot.timestamp)
    if not ordered:
        raise AnalysisError("no snapshots given")
    times = tuple(snapshot.timestamp for snapshot in ordered)
    return InfrastructureEvolution(
        map_name=ordered[0].map_name,
        routers=TimeSeries(times, tuple(float(len(s.routers)) for s in ordered)),
        internal_links=TimeSeries(times, tuple(float(len(s.internal_links)) for s in ordered)),
        external_links=TimeSeries(times, tuple(float(len(s.external_links)) for s in ordered)),
    )


@dataclass(frozen=True, slots=True)
class StructuralEvent:
    """A classified infrastructure change."""

    kind: str  # "make-before-break" | "maintenance" | "growth" | "shrink"
    start: datetime
    end: datetime
    delta: float


def structural_events(
    series: TimeSeries,
    pairing_window: timedelta = timedelta(days=60),
    min_delta: float = 2.0,
    classifier: Callable[[Step, Step | None], str] | None = None,
) -> list[StructuralEvent]:
    """Classify steps of an evolution series into the paper's narrative.

    An increase followed by a decrease within ``pairing_window`` is a
    make-before-break upgrade; a decrease followed by an increase is a
    maintenance/failure event; unpaired steps are growth or shrink.
    """
    steps = detect_steps(series, min_delta=min_delta, window=4)
    events: list[StructuralEvent] = []
    used = [False] * len(steps)
    for index, step in enumerate(steps):
        if used[index]:
            continue
        partner_index = None
        for j in range(index + 1, len(steps)):
            if used[j]:
                continue
            if steps[j].when - step.when > pairing_window:
                break
            if (step.delta > 0) != (steps[j].delta > 0):
                partner_index = j
                break
        if classifier is not None:
            kind = classifier(step, steps[partner_index] if partner_index is not None else None)
        elif partner_index is not None and step.delta > 0:
            kind = "make-before-break"
        elif partner_index is not None:
            kind = "maintenance"
        else:
            kind = "growth" if step.delta > 0 else "shrink"
        if partner_index is not None:
            used[partner_index] = True
            events.append(
                StructuralEvent(
                    kind=kind,
                    start=step.when,
                    end=steps[partner_index].when,
                    delta=step.delta + steps[partner_index].delta,
                )
            )
        else:
            events.append(
                StructuralEvent(kind=kind, start=step.when, end=step.when, delta=step.delta)
            )
        used[index] = True
    return events
