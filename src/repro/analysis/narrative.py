"""Change narratives: the paper's §5 prose, generated from data.

Given two observation points of one map (plus optional context sources —
the status feed and PeeringDB), produce the human-readable changelog a
network researcher would write: router churn by site, link growth split
internal/external, detected upgrades, and which changes the provider's
status page explains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import timedelta

from repro.analysis.sites import site_growth
from repro.errors import AnalysisError
from repro.analysis.upgrades import scan_all_peerings
from repro.peeringdb.feed import SyntheticPeeringDB
from repro.statusfeed.feed import SyntheticStatusFeed
from repro.statusfeed.model import EventKind
from repro.topology.diff import diff_snapshots
from repro.topology.model import MapSnapshot


@dataclass
class Changelog:
    """Structured change summary between two snapshots."""

    first: MapSnapshot
    last: MapSnapshot
    lines: list[str] = field(default_factory=list)

    def add(self, text: str) -> None:
        self.lines.append(text)

    def render(self) -> str:
        """The narrative as markdown-ish text."""
        header = (
            f"{self.first.map_name.title} map, "
            f"{self.first.timestamp.date()} → {self.last.timestamp.date()}"
        )
        body = "\n".join(f"* {line}" for line in self.lines) or "* no changes."
        return f"{header}\n{body}"


def _describe_router_churn(changelog: Changelog) -> None:
    diff = diff_snapshots(changelog.first, changelog.last)
    if diff.added_routers:
        changelog.add(
            f"{len(diff.added_routers)} routers added "
            f"(e.g. {diff.added_routers[0]})."
        )
    if diff.removed_routers:
        changelog.add(
            f"{len(diff.removed_routers)} routers removed "
            f"(e.g. {diff.removed_routers[0]})."
        )
    if diff.added_peerings:
        changelog.add(
            f"{len(diff.added_peerings)} new peerings: "
            + ", ".join(diff.added_peerings[:4])
            + ("…" if len(diff.added_peerings) > 4 else "")
        )
    internal_delta = diff.added_internal_links - diff.removed_internal_links
    external_delta = diff.added_external_links - diff.removed_external_links
    if internal_delta or external_delta:
        changelog.add(
            f"link count {internal_delta:+d} internal, {external_delta:+d} external."
        )


def _describe_site_growth(changelog: Changelog, top: int = 3) -> None:
    growth = [
        item
        for item in site_growth(changelog.first, changelog.last)
        if item.link_delta > 0
    ]
    growth.sort(key=lambda item: item.link_delta, reverse=True)
    if growth:
        leaders = ", ".join(
            f"{item.site} ({item.link_delta:+d} link-ends)" for item in growth[:top]
        )
        changelog.add(f"fastest-growing sites: {leaders}.")


def _describe_upgrades(
    changelog: Changelog,
    snapshots: list[MapSnapshot],
    peeringdb: SyntheticPeeringDB | None,
) -> None:
    for peering, events in scan_all_peerings(snapshots).items():
        for event in events:
            sentence = (
                f"capacity upgrade towards {peering}: "
                f"{event.links_before} → {event.links_after} parallel links, "
                f"added {event.added_at.date()}, activated "
                f"{event.activated_at.date()}"
            )
            if peeringdb is not None:
                from repro.analysis.upgrades import correlate_with_peeringdb

                correlated = correlate_with_peeringdb([event], peeringdb, peering)
                if correlated:
                    item = correlated[0]
                    sentence += (
                        f"; PeeringDB confirms {item.capacity_before_gbps} → "
                        f"{item.capacity_after_gbps} Gbps "
                        f"(≈{item.inferred_per_link_capacity_gbps:.0f} Gbps per link)"
                    )
            changelog.add(sentence + ".")


def _describe_status_context(
    changelog: Changelog, feed: SyntheticStatusFeed
) -> None:
    window_events = [
        event
        for event in feed.events_between(
            changelog.first.timestamp - timedelta(days=1),
            changelog.last.timestamp + timedelta(days=1),
        )
        if event.kind is not EventKind.ROUTINE_NOTICE
    ]
    if window_events:
        changelog.add(
            f"the status page reports {len(window_events)} structural "
            f"entries over the window (e.g. \"{window_events[0].title}\")."
        )


def build_changelog(
    snapshots: list[MapSnapshot],
    peeringdb: SyntheticPeeringDB | None = None,
    status_feed: SyntheticStatusFeed | None = None,
) -> Changelog:
    """Narrate the changes across an ordered snapshot window.

    Args:
        snapshots: at least two snapshots of one map (sorted internally).
        peeringdb: optional capacity context for detected upgrades.
        status_feed: optional provider status page for explanations.

    Raises:
        AnalysisError: with fewer than two snapshots there is nothing to
            narrate (also a ValueError).
    """
    ordered = sorted(snapshots, key=lambda snapshot: snapshot.timestamp)
    if len(ordered) < 2:
        raise AnalysisError("a changelog needs at least two snapshots")
    changelog = Changelog(first=ordered[0], last=ordered[-1])
    _describe_router_churn(changelog)
    _describe_site_growth(changelog)
    _describe_upgrades(changelog, ordered, peeringdb)
    if status_feed is not None:
        _describe_status_context(changelog, status_feed)
    return changelog
