"""ECMP load imbalance over parallel links (Figure 5c).

For each *directed* set of parallel links the imbalance is the difference
between the maximum and the minimum load, after the paper's filtering:
links at 0 % are unused, links at 1 % are indistinguishable from control
traffic, and sets left with fewer than two links are dropped.  The paper
finds more than 60 % of imbalances at or below 1 %, external groups
tighter than internal ones (>90 % at or below 2 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy

from repro.analysis.stats import cdf, fraction_at_most
from repro.topology.graph import directed_parallel_groups
from repro.topology.model import MapSnapshot

#: Loads below this are filtered out before computing imbalance (the
#: paper ignores 0 % and discounts 1 %).
MINIMUM_ACTIVE_LOAD = 2.0


@dataclass
class ImbalanceResult:
    """Imbalance samples accumulated over snapshots."""

    internal: list[float] = field(default_factory=list)
    external: list[float] = field(default_factory=list)

    @property
    def all_values(self) -> list[float]:
        return self.internal + self.external

    def fraction_within(self, threshold: float, category: str = "all") -> float:
        """Fraction of imbalances <= threshold for one category."""
        values = {
            "all": self.all_values,
            "internal": self.internal,
            "external": self.external,
        }[category]
        return fraction_at_most(values, threshold)


def imbalance_values(
    snapshot: MapSnapshot, minimum_load: float = MINIMUM_ACTIVE_LOAD
) -> ImbalanceResult:
    """Per-directed-group imbalances of one snapshot, paper-filtered."""
    result = ImbalanceResult()
    for group in directed_parallel_groups(snapshot):
        imbalance = group.imbalance(minimum_load)
        if imbalance is None:
            continue
        if group.external:
            result.external.append(imbalance)
        else:
            result.internal.append(imbalance)
    return result


def collect_imbalances(
    snapshots: Iterable[MapSnapshot], minimum_load: float = MINIMUM_ACTIVE_LOAD
) -> ImbalanceResult:
    """Accumulate imbalances over many snapshots (the Figure 5c sample)."""
    result = ImbalanceResult()
    for snapshot in snapshots:
        one = imbalance_values(snapshot, minimum_load)
        result.internal.extend(one.internal)
        result.external.extend(one.external)
    return result


def imbalance_cdfs(
    result: ImbalanceResult,
) -> dict[str, tuple[numpy.ndarray, numpy.ndarray]]:
    """Figure 5c: imbalance CDFs for internal and external groups."""
    return {
        "internal": cdf(result.internal),
        "external": cdf(result.external),
        "all": cdf(result.all_values),
    }
