"""Link-upgrade detection and PeeringDB correlation (Figure 6).

The paper traces an AMS-IX capacity upgrade through three observable
events: the new parallel link *appears* on the map at 0 % load (A), the
PeeringDB entry is updated (B), and the link is *activated*, spreading
traffic over all parallel links and cutting per-link load by the old/new
capacity ratio (C).  Combining A/C with B lets one infer the per-link
capacity (100 Gbps in the paper).

This module detects A and C in a stream of snapshots and correlates with a
(synthetic) PeeringDB to recover B and the capacity inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Iterable

import numpy

from repro.peeringdb.feed import SyntheticPeeringDB
from repro.topology.model import MapSnapshot


@dataclass(frozen=True, slots=True)
class GroupObservation:
    """One snapshot's view of a router-to-peering parallel group."""

    when: datetime
    #: Egress loads towards the peering, one per parallel link, in map
    #: order.
    loads: tuple[float, ...]

    @property
    def size(self) -> int:
        return len(self.loads)

    @property
    def active_size(self) -> int:
        """Links carrying traffic (load above the control-traffic level)."""
        return sum(1 for load in self.loads if load >= 2.0)

    @property
    def mean_active_load(self) -> float:
        active = [load for load in self.loads if load >= 2.0]
        if not active:
            return 0.0
        return float(numpy.mean(active))


def track_peering_group(
    snapshots: Iterable[MapSnapshot], peering: str
) -> list[GroupObservation]:
    """Extract the parallel-group observations towards one peering.

    When the peering connects to several routers, the largest group is
    tracked (the Figure 6 case has a single one).
    """
    observations: list[GroupObservation] = []
    for snapshot in sorted(snapshots, key=lambda s: s.timestamp):
        by_router: dict[str, list[float]] = {}
        for link in snapshot.links:
            if peering not in link.nodes:
                continue
            router = link.a.node if link.b.node == peering else link.b.node
            by_router.setdefault(router, []).append(link.load_from(router))
        if not by_router:
            continue
        loads = max(by_router.values(), key=len)
        observations.append(
            GroupObservation(when=snapshot.timestamp, loads=tuple(loads))
        )
    return observations


@dataclass(frozen=True, slots=True)
class UpgradeEvent:
    """A detected add-then-activate parallel-link upgrade."""

    #: Arrow A: first snapshot where the new link is visible (at ~0 %).
    added_at: datetime
    #: Arrow C: first snapshot where the new link carries traffic.
    activated_at: datetime
    links_before: int
    links_after: int
    #: Mean per-link load shortly before and after activation.
    load_before: float
    load_after: float

    @property
    def observed_load_ratio(self) -> float:
        """after/before — should match links_before/links_after."""
        if self.load_before == 0:
            return float("inf")
        return self.load_after / self.load_before

    @property
    def expected_load_ratio(self) -> float:
        return self.links_before / self.links_after


def detect_upgrades(
    observations: list[GroupObservation],
    settle: int = 12,
) -> list[UpgradeEvent]:
    """Find add-then-activate upgrades in a group's observation stream.

    Args:
        observations: time-ordered group observations.
        settle: number of observations averaged on each side of the
            activation to estimate the load levels.
    """
    events: list[UpgradeEvent] = []
    pending_add: tuple[datetime, int, int] | None = None  # (when, size_before, size_after)
    for index in range(1, len(observations)):
        previous = observations[index - 1]
        current = observations[index]
        if current.size > previous.size and current.active_size <= previous.active_size:
            # Arrow A: a link appeared but carries no traffic yet.
            pending_add = (current.when, previous.size, current.size)
            continue
        if pending_add is not None and current.active_size >= pending_add[2]:
            # Arrow C: the added link now carries traffic.
            before_window = [
                obs.mean_active_load
                for obs in observations[max(0, index - settle):index]
            ]
            after_window = [
                obs.mean_active_load
                for obs in observations[index:index + settle]
            ]
            events.append(
                UpgradeEvent(
                    added_at=pending_add[0],
                    activated_at=current.when,
                    links_before=pending_add[1],
                    links_after=pending_add[2],
                    load_before=float(numpy.mean(before_window)) if before_window else 0.0,
                    load_after=float(numpy.mean(after_window)) if after_window else 0.0,
                )
            )
            pending_add = None
    return events


@dataclass(frozen=True, slots=True)
class CorrelatedUpgrade:
    """An upgrade event matched with its PeeringDB capacity change."""

    event: UpgradeEvent
    peering: str
    #: Arrow B: when PeeringDB recorded the new capacity.
    peeringdb_updated: datetime
    capacity_before_gbps: int
    capacity_after_gbps: int

    @property
    def inferred_per_link_capacity_gbps(self) -> float:
        """Capacity delta divided by link delta — the paper's 100 Gbps."""
        link_delta = self.event.links_after - self.event.links_before
        if link_delta == 0:
            return float("nan")
        return (self.capacity_after_gbps - self.capacity_before_gbps) / link_delta


def scan_all_peerings(
    snapshots: list[MapSnapshot],
    settle: int = 12,
) -> dict[str, list[UpgradeEvent]]:
    """Run upgrade detection over *every* peering on the maps.

    Researchers would not know in advance which peering was upgraded; this
    sweeps them all and returns only peerings with at least one detected
    event.
    """
    peerings: set[str] = set()
    for snapshot in snapshots:
        peerings.update(node.name for node in snapshot.peerings)
    found: dict[str, list[UpgradeEvent]] = {}
    for peering in sorted(peerings):
        observations = track_peering_group(snapshots, peering)
        events = detect_upgrades(observations, settle=settle)
        if events:
            found[peering] = events
    return found


@dataclass(frozen=True, slots=True)
class DowngradeEvent:
    """A detected parallel-link removal (capacity reduction).

    The mirror image of an upgrade: a link disappears from the group and
    the remaining links absorb its traffic, raising per-link load by
    roughly ``links_before / links_after``.
    """

    removed_at: datetime
    links_before: int
    links_after: int
    load_before: float
    load_after: float

    @property
    def observed_load_ratio(self) -> float:
        if self.load_before == 0:
            return float("inf")
        return self.load_after / self.load_before

    @property
    def expected_load_ratio(self) -> float:
        return self.links_before / self.links_after


def detect_downgrades(
    observations: list[GroupObservation],
    settle: int = 12,
) -> list[DowngradeEvent]:
    """Find parallel-link removals in a group's observation stream."""
    events: list[DowngradeEvent] = []
    for index in range(1, len(observations)):
        previous = observations[index - 1]
        current = observations[index]
        if current.size >= previous.size or current.size == 0:
            continue
        before_window = [
            obs.mean_active_load
            for obs in observations[max(0, index - settle):index]
        ]
        after_window = [
            obs.mean_active_load for obs in observations[index:index + settle]
        ]
        events.append(
            DowngradeEvent(
                removed_at=current.when,
                links_before=previous.size,
                links_after=current.size,
                load_before=float(numpy.mean(before_window)) if before_window else 0.0,
                load_after=float(numpy.mean(after_window)) if after_window else 0.0,
            )
        )
    return events


def correlate_with_peeringdb(
    events: list[UpgradeEvent],
    peeringdb: SyntheticPeeringDB,
    peering: str,
    window: timedelta = timedelta(days=30),
) -> list[CorrelatedUpgrade]:
    """Match detected upgrades with PeeringDB capacity changes near them."""
    correlated: list[CorrelatedUpgrade] = []
    for event in events:
        changes = peeringdb.changes_near(peering, event.added_at, window)
        for when, old, new in changes:
            if event.added_at <= when <= event.activated_at + window:
                correlated.append(
                    CorrelatedUpgrade(
                        event=event,
                        peering=peering,
                        peeringdb_updated=when,
                        capacity_before_gbps=old,
                        capacity_after_gbps=new,
                    )
                )
                break
    return correlated
