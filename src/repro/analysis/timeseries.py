"""Time-series container and change detection."""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Iterator

import numpy

from repro.errors import ReproError


@dataclass(frozen=True)
class TimeSeries:
    """A timestamped numeric series (router counts, link counts, loads)."""

    times: tuple[datetime, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ReproError("times and values must have the same length")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ReproError("time series must be strictly increasing in time")

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[datetime, float]]:
        return iter(zip(self.times, self.values))

    @classmethod
    def from_pairs(cls, pairs) -> TimeSeries:
        """Build from an iterable of (time, value)."""
        pairs = sorted(pairs, key=lambda item: item[0])
        return cls(
            times=tuple(time for time, _ in pairs),
            values=tuple(float(value) for _, value in pairs),
        )

    def value_at(self, when: datetime) -> float:
        """Step interpolation: last value at or before ``when``."""
        if not self.times:
            raise ReproError("empty time series")
        stamps = numpy.array([t.timestamp() for t in self.times])
        index = int(numpy.searchsorted(stamps, when.timestamp(), side="right")) - 1
        if index < 0:
            raise ReproError(f"{when.isoformat()} precedes the series start")
        return self.values[index]

    def window(self, start: datetime, end: datetime) -> TimeSeries:
        """Sub-series with times in [start, end)."""
        pairs = [(t, v) for t, v in self if start <= t < end]
        return TimeSeries.from_pairs(pairs)

    def deltas(self) -> list[tuple[datetime, float]]:
        """Per-step change: (time of new value, new - old)."""
        return [
            (self.times[i], self.values[i] - self.values[i - 1])
            for i in range(1, len(self.times))
        ]

    def as_arrays(self) -> tuple[numpy.ndarray, numpy.ndarray]:
        """(epoch seconds, values) numpy arrays for plotting."""
        return (
            numpy.array([t.timestamp() for t in self.times]),
            numpy.array(self.values, dtype=float),
        )


@dataclass(frozen=True, slots=True)
class Step:
    """A detected abrupt change in a time series."""

    when: datetime
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def ratio(self) -> float:
        """after/before — the quantity the Figure 6 analysis checks
        against the capacity ratio."""
        if self.before == 0:
            return float("inf")
        return self.after / self.before


def detect_steps(
    series: TimeSeries,
    min_delta: float = 1.0,
    window: int = 5,
    min_gap: timedelta = timedelta(hours=6),
) -> list[Step]:
    """Detect abrupt level shifts by comparing window medians.

    A step is reported where the median of the next ``window`` samples
    differs from the median of the previous ``window`` samples by at least
    ``min_delta``; consecutive detections within ``min_gap`` are merged
    into the strongest one.
    """
    if len(series) < 2 * window + 1:
        return []
    values = numpy.array(series.values, dtype=float)
    candidates: list[Step] = []
    for index in range(window, len(values) - window):
        before = float(numpy.median(values[index - window:index]))
        after = float(numpy.median(values[index:index + window]))
        if abs(after - before) >= min_delta:
            candidates.append(
                Step(when=series.times[index], before=before, after=after)
            )
    merged: list[Step] = []
    for step in candidates:
        if merged and step.when - merged[-1].when < min_gap:
            if abs(step.delta) > abs(merged[-1].delta):
                merged[-1] = step
            continue
        merged.append(step)
    return merged
