"""Absolute traffic volumes from relative loads.

The weathermap publishes loads as *percentages* of unknown capacities;
combining them with an interconnection database turns them into absolute
volumes, the way the paper's Figure 6 analysis infers 100 Gbps per AMS-IX
link.  This module generalises that: per-link and per-group volumes, and
a backbone-wide egress estimate (the paper's intro quotes "a total egress
capacity of more than 20 Tbps").
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from repro.peeringdb.feed import SyntheticPeeringDB
from repro.topology.model import MapSnapshot


def volume_gbps(load_percent: float, capacity_gbps: float) -> float:
    """Traffic volume carried by one link direction."""
    return load_percent / 100.0 * capacity_gbps


@dataclass(frozen=True, slots=True)
class PeeringVolume:
    """Aggregate egress towards one peering at one instant."""

    peering: str
    links: int
    capacity_gbps: float
    egress_gbps: float
    ingress_gbps: float

    @property
    def egress_utilisation(self) -> float:
        """Aggregate egress load fraction across the group."""
        if self.capacity_gbps == 0:
            return 0.0
        return self.egress_gbps / self.capacity_gbps


def peering_volume(
    snapshot: MapSnapshot,
    peeringdb: SyntheticPeeringDB,
    peering: str,
    when: datetime | None = None,
) -> PeeringVolume | None:
    """Volume towards one peering, splitting its capacity over its links.

    Returns ``None`` when the peering is absent from the snapshot or the
    database has no capacity entry yet.
    """
    links = [link for link in snapshot.links if peering in link.nodes]
    if not links:
        return None
    at = when if when is not None else snapshot.timestamp
    capacity = peeringdb.capacity_at(peering, at)
    if capacity is None:
        return None
    per_link = capacity / len(links)
    egress = 0.0
    ingress = 0.0
    for link in links:
        router = link.a.node if link.b.node == peering else link.b.node
        egress += volume_gbps(link.load_from(router), per_link)
        ingress += volume_gbps(link.load_from(peering), per_link)
    return PeeringVolume(
        peering=peering,
        links=len(links),
        capacity_gbps=float(capacity),
        egress_gbps=egress,
        ingress_gbps=ingress,
    )


def total_egress_capacity_gbps(
    snapshot: MapSnapshot, peeringdb: SyntheticPeeringDB
) -> float:
    """Sum of advertised capacities over the snapshot's peerings.

    This is the quantity behind the paper's "total egress capacity of
    more than 20 Tbps" framing (per map; the real figure spans all maps
    plus transit not shown on the weathermap).
    """
    total = 0.0
    for node in snapshot.peerings:
        capacity = peeringdb.capacity_at(node.name, snapshot.timestamp)
        if capacity is not None:
            total += capacity
    return total


def total_egress_volume_gbps(
    snapshot: MapSnapshot, peeringdb: SyntheticPeeringDB
) -> float:
    """Instantaneous egress volume over every peering of the snapshot."""
    total = 0.0
    for node in snapshot.peerings:
        volume = peering_volume(snapshot, peeringdb, node.name)
        if volume is not None:
            total += volume.egress_gbps
    return total
