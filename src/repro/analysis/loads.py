"""Link-load distributions (Figures 5a and 5b).

Loads are collected as directed samples — each link contributes its two
per-direction percentages per snapshot — split into internal (router to
router) and external (router to peering), then either grouped by hour of
day (Figure 5a's percentile bands) or folded into CDFs (Figure 5b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy

from repro.analysis.stats import cdf, percentile_bands
from repro.topology.model import MapSnapshot

#: Percentiles of the Figure 5a bands: whiskers, quartiles, median.
FIGURE5A_PERCENTILES = (1.0, 25.0, 50.0, 75.0, 99.0)


@dataclass
class LoadSamples:
    """Directed load samples accumulated over many snapshots."""

    internal: list[float] = field(default_factory=list)
    external: list[float] = field(default_factory=list)
    #: Hour-of-day bucket (0-23) for each combined sample, aligned with
    #: ``all_loads`` order.
    hours: list[int] = field(default_factory=list)
    #: Weekday (0=Monday .. 6=Sunday) per sample, aligned with hours.
    weekdays: list[int] = field(default_factory=list)
    _combined: list[float] = field(default_factory=list)

    def add_snapshot(self, snapshot: MapSnapshot) -> None:
        """Fold one snapshot's loads in."""
        hour = snapshot.timestamp.hour
        weekday = snapshot.timestamp.weekday()
        for link in snapshot.links:
            external = snapshot.is_external(link)
            for load in (link.a.load, link.b.load):
                if external:
                    self.external.append(load)
                else:
                    self.internal.append(load)
                self._combined.append(load)
                self.hours.append(hour)
                self.weekdays.append(weekday)

    @property
    def all_loads(self) -> list[float]:
        """Every directed sample regardless of category."""
        return self._combined

    def __len__(self) -> int:
        return len(self._combined)


def collect_load_samples(snapshots: Iterable[MapSnapshot]) -> LoadSamples:
    """Accumulate load samples over an iterable of snapshots."""
    samples = LoadSamples()
    for snapshot in snapshots:
        samples.add_snapshot(snapshot)
    return samples


@dataclass(frozen=True)
class HourOfDayBands:
    """Figure 5a: load percentiles per hour of day."""

    hours: tuple[int, ...]
    #: bands[p][i] is percentile p at hour hours[i].
    bands: dict[float, tuple[float, ...]]

    def median_peak_hour(self) -> int:
        """Hour with the highest median load (paper: 7-9 p.m.)."""
        medians = self.bands[50.0]
        return self.hours[int(numpy.argmax(medians))]

    def median_trough_hour(self) -> int:
        """Hour with the lowest median load (paper: 2-4 a.m.)."""
        medians = self.bands[50.0]
        return self.hours[int(numpy.argmin(medians))]

    def spread_at(self, hour: int) -> float:
        """99th minus 1st percentile at one hour — the variance proxy the
        paper observes growing with load."""
        index = self.hours.index(hour)
        return self.bands[99.0][index] - self.bands[1.0][index]


def hour_of_day_bands(
    samples: LoadSamples,
    percentiles: tuple[float, ...] = FIGURE5A_PERCENTILES,
) -> HourOfDayBands:
    """Group all load samples into hours of day and take percentiles."""
    loads = numpy.asarray(samples.all_loads, dtype=float)
    hours = numpy.asarray(samples.hours, dtype=int)
    present_hours = tuple(sorted(set(hours.tolist())))
    bands: dict[float, list[float]] = {p: [] for p in percentiles}
    for hour in present_hours:
        bucket = loads[hours == hour]
        values = percentile_bands(bucket, percentiles)
        for p in percentiles:
            bands[p].append(values[p])
    return HourOfDayBands(
        hours=present_hours,
        bands={p: tuple(values) for p, values in bands.items()},
    )


def load_cdfs(samples: LoadSamples) -> dict[str, tuple[numpy.ndarray, numpy.ndarray]]:
    """Figure 5b: load CDFs for all / internal / external samples."""
    return {
        "all": cdf(samples.all_loads),
        "internal": cdf(samples.internal),
        "external": cdf(samples.external),
    }


@dataclass(frozen=True, slots=True)
class WeeklyContrast:
    """Weekday vs weekend load levels — the weekly modulation."""

    weekday_mean: float
    weekend_mean: float
    weekday_samples: int
    weekend_samples: int

    @property
    def weekend_ratio(self) -> float:
        """Weekend mean over weekday mean (<1 for business-shaped traffic)."""
        if self.weekday_mean == 0:
            return 0.0
        return self.weekend_mean / self.weekday_mean


def weekly_contrast(samples: LoadSamples) -> WeeklyContrast:
    """Split the load samples into weekdays and weekends.

    Backbone traffic is business-shaped: weekends run measurably quieter,
    a secondary cycle on top of Figure 5a's daily one.
    """
    loads = numpy.asarray(samples.all_loads, dtype=float)
    weekdays = numpy.asarray(samples.weekdays, dtype=int)
    weekend_mask = weekdays >= 5
    weekday_values = loads[~weekend_mask]
    weekend_values = loads[weekend_mask]
    return WeeklyContrast(
        weekday_mean=float(weekday_values.mean()) if weekday_values.size else 0.0,
        weekend_mean=float(weekend_values.mean()) if weekend_values.size else 0.0,
        weekday_samples=int(weekday_values.size),
        weekend_samples=int(weekend_values.size),
    )
