"""Site-to-site volume matrices.

The paper situates its dataset next to the public traffic matrices
(GEANT, Abilene) used by traffic-engineering research.  A weathermap does
not expose origin-destination demands, but it does expose *link* volumes;
aggregating them between site pairs yields the site-adjacency volume
matrix — the input form used by link-level TE studies, exportable for
frameworks like REPETITA.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.capacity import volume_gbps
from repro.analysis.sites import site_of
from repro.peeringdb.feed import SyntheticPeeringDB
from repro.topology.model import MapSnapshot

#: Capacity assumed for internal links, per link, in Gbps.  The paper's
#: Figure 6 analysis pins external AMS-IX links at 100 Gbps; internal
#: backbone links at a large operator are the same optic generation.
DEFAULT_INTERNAL_LINK_GBPS = 100.0


@dataclass(frozen=True)
class SiteMatrix:
    """A directed site-to-site volume matrix, in Gbps."""

    sites: tuple[str, ...]
    #: volumes[(source_site, target_site)] in Gbps.
    volumes: dict[tuple[str, str], float]

    def volume(self, source: str, target: str) -> float:
        return self.volumes.get((source, target), 0.0)

    def total_gbps(self) -> float:
        return sum(self.volumes.values())

    def busiest_pairs(self, top: int = 5) -> list[tuple[str, str, float]]:
        """The hottest directed site pairs."""
        ranked = sorted(
            ((s, t, v) for (s, t), v in self.volumes.items()),
            key=lambda item: item[2],
            reverse=True,
        )
        return ranked[:top]

    def to_csv(self, path: str | Path | None = None) -> str:
        """Dense CSV: one row per source site, one column per target."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["source\\target", *self.sites])
        for source in self.sites:
            writer.writerow(
                [source]
                + [f"{self.volume(source, target):.2f}" for target in self.sites]
            )
        text = buffer.getvalue()
        if path is not None:
            target_path = Path(path)
            target_path.parent.mkdir(parents=True, exist_ok=True)
            target_path.write_text(text, encoding="utf-8")
        return text


def site_volume_matrix(
    snapshot: MapSnapshot,
    peeringdb: SyntheticPeeringDB | None = None,
    internal_link_gbps: float = DEFAULT_INTERNAL_LINK_GBPS,
) -> SiteMatrix:
    """Aggregate directed link volumes between sites.

    Internal links contribute at the assumed per-link capacity; external
    links use the peering's PeeringDB capacity split over its links when
    a database is given (peerings appear as their own "site", upper-case).
    """
    per_peering_capacity: dict[str, float] = {}
    if peeringdb is not None:
        link_counts: dict[str, int] = {}
        for link in snapshot.external_links:
            peering = link.a.node if snapshot.nodes[link.a.node].is_peering else link.b.node
            link_counts[peering] = link_counts.get(peering, 0) + 1
        for peering, count in link_counts.items():
            capacity = peeringdb.capacity_at(peering, snapshot.timestamp)
            if capacity is not None and count:
                per_peering_capacity[peering] = capacity / count

    volumes: dict[tuple[str, str], float] = {}
    sites: set[str] = set()

    def place_of(name: str) -> str:
        node = snapshot.nodes[name]
        return name if node.is_peering else site_of(name)

    for link in snapshot.links:
        external = snapshot.is_external(link)
        for source in link.nodes:
            target = link.a.node if link.b.node == source else link.b.node
            source_place = place_of(source)
            target_place = place_of(target)
            if source_place == target_place:
                continue
            if external:
                peering = source if snapshot.nodes[source].is_peering else target
                capacity = per_peering_capacity.get(peering, internal_link_gbps)
            else:
                capacity = internal_link_gbps
            load = link.load_from(source)
            key = (source_place, target_place)
            volumes[key] = volumes.get(key, 0.0) + volume_gbps(load, capacity)
            sites.add(source_place)
            sites.add(target_place)

    return SiteMatrix(sites=tuple(sorted(sites)), volumes=volumes)
