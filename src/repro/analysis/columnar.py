"""Vectorised analyses straight over columnar snapshot indexes.

The Section 5 figures reduce a map's whole history to a handful of
aggregates: directed load distributions (Figures 5a/5b), per-link series,
and appearance/disappearance times behind the evolution narratives.  Once
a :class:`~repro.dataset.index.SnapshotIndex` exists, those aggregates
fall out of its flat columns with numpy — no ``MapSnapshot`` objects are
materialised, which is what makes a full-series figure pass cheap enough
to iterate on.

The accessors mirror their object-path equivalents exactly:
:func:`load_samples` returns the same
:class:`~repro.analysis.loads.LoadSamples` (element for element) that
``collect_load_samples(load_all(...))`` would, so every downstream
figure function works unchanged.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from datetime import datetime, timezone

import numpy

from repro.analysis.loads import LoadSamples
from repro.dataset.index import SnapshotIndex
from repro.errors import ColumnarCapacityError
from repro.topology.model import NodeKind

__all__ = [
    "DirectedLoadColumns",
    "LinkLifetime",
    "LoadMatrix",
    "NodeLifetime",
    "directed_load_columns",
    "link_lifetimes",
    "load_matrix",
    "load_samples",
    "node_lifetimes",
]


def _column(raw, dtype) -> numpy.ndarray:
    """Zero-copy numpy view over one of the index's array columns."""
    if len(raw) == 0:
        return numpy.empty(0, dtype=dtype)
    return numpy.frombuffer(raw, dtype=dtype)


def _rows_and_bounds(
    index: SnapshotIndex, start: datetime | None, end: datetime | None
) -> tuple[range, int, int]:
    """Selected snapshot rows plus their link-column slice bounds."""
    rows = index.rows_in_window(start, end)
    link_counts = _column(index.link_counts, numpy.uint32)
    offsets = numpy.concatenate(
        ([0], numpy.cumsum(link_counts, dtype=numpy.int64))
    )
    return rows, int(offsets[rows.start]), int(offsets[rows.stop])


def _link_row_of(index: SnapshotIndex) -> numpy.ndarray:
    """For every link column element, the snapshot row it belongs to."""
    counts = _column(index.link_counts, numpy.uint32).astype(numpy.int64)
    return numpy.repeat(numpy.arange(len(counts), dtype=numpy.int64), counts)


def _external_links(index: SnapshotIndex) -> numpy.ndarray:
    """Boolean per link column element: does it touch a peering?

    Fast path: when no name is ever used both as a router and as a
    peering (the invariable case — kinds follow the map's naming
    convention), peering-ness is a property of the name id and one table
    lookup vectorises the whole corpus.  Otherwise each snapshot's own
    peering membership decides, row by row.
    """
    a_nodes = _column(index.link_a_nodes, numpy.uint32)
    b_nodes = _column(index.link_b_nodes, numpy.uint32)
    as_router = numpy.zeros(len(index.names), dtype=bool)
    as_peering = numpy.zeros(len(index.names), dtype=bool)
    router_ids = _column(index.router_ids, numpy.uint32)
    peering_ids = _column(index.peering_ids, numpy.uint32)
    if len(router_ids):
        as_router[router_ids] = True
    if len(peering_ids):
        as_peering[peering_ids] = True
    if not bool(numpy.any(as_router & as_peering)):
        return as_peering[a_nodes] | as_peering[b_nodes]
    # Ambiguous names: fall back to per-snapshot membership.
    external = numpy.zeros(len(a_nodes), dtype=bool)
    link_offset = peering_offset = 0
    for row in range(len(index)):
        links = index.link_counts[row]
        peerings = index.peering_counts[row]
        members = peering_ids[peering_offset : peering_offset + peerings]
        segment = slice(link_offset, link_offset + links)
        external[segment] = numpy.isin(a_nodes[segment], members) | numpy.isin(
            b_nodes[segment], members
        )
        link_offset += links
        peering_offset += peerings
    return external


@dataclass(frozen=True)
class DirectedLoadColumns:
    """Every directed load sample of a window, as aligned flat arrays.

    Samples interleave each link's two directions (a→b then b→a) in link
    order — the same order the object path walks them.
    """

    loads: numpy.ndarray  #: float64, percent
    hours: numpy.ndarray  #: int64, UTC hour of day per sample
    weekdays: numpy.ndarray  #: int64, 0=Monday .. 6=Sunday
    external: numpy.ndarray  #: bool, link touches a peering
    snapshot_rows: numpy.ndarray  #: int64, index row per sample

    def __len__(self) -> int:
        return len(self.loads)


def directed_load_columns(
    index: SnapshotIndex,
    start: datetime | None = None,
    end: datetime | None = None,
) -> DirectedLoadColumns:
    """All directed load samples in ``[start, end)``, fully vectorised."""
    rows, lo, hi = _rows_and_bounds(index, start, end)
    span = hi - lo
    loads = numpy.empty(2 * span, dtype=numpy.float64)
    loads[0::2] = _column(index.link_a_loads, numpy.float64)[lo:hi]
    loads[1::2] = _column(index.link_b_loads, numpy.float64)[lo:hi]

    link_rows = _link_row_of(index)[lo:hi]
    timestamps = _column(index.timestamps, numpy.int64)
    epochs = timestamps[link_rows]
    hours = (epochs // 3600) % 24
    weekdays = (epochs // 86400 + 3) % 7  # epoch day zero was a Thursday

    external = _external_links(index)[lo:hi]
    return DirectedLoadColumns(
        loads=loads,
        hours=numpy.repeat(hours, 2),
        weekdays=numpy.repeat(weekdays, 2),
        external=numpy.repeat(external, 2),
        snapshot_rows=numpy.repeat(link_rows, 2),
    )


def load_samples(
    index: SnapshotIndex,
    start: datetime | None = None,
    end: datetime | None = None,
) -> LoadSamples:
    """The Figure 5 sample set, identical to the object path's.

    Equivalent to ``collect_load_samples(load_all(store, map))`` — same
    values in the same order — but computed from columns, without
    reconstructing a single snapshot.
    """
    columns = directed_load_columns(index, start, end)
    samples = LoadSamples()
    external = columns.external
    samples.internal = columns.loads[~external].tolist()
    samples.external = columns.loads[external].tolist()
    samples.hours = columns.hours.tolist()
    samples.weekdays = columns.weekdays.tolist()
    samples._combined = columns.loads.tolist()
    return samples


@dataclass(frozen=True)
class NodeLifetime:
    """When one node was first and last observed, and how often."""

    name: str
    kind: NodeKind
    first_seen: datetime
    last_seen: datetime
    snapshots: int


def node_lifetimes(index: SnapshotIndex) -> dict[str, NodeLifetime]:
    """First/last appearance and presence count per node, vectorised.

    The evolution analyses (Figure 4, the make-before-break narratives)
    reduce to exactly these boundaries; grouping the membership columns
    answers them for a whole map history at once.
    """
    timestamps = _column(index.timestamps, numpy.int64)
    results: dict[str, NodeLifetime] = {}
    for kind, ids_raw, counts_raw in (
        (NodeKind.ROUTER, index.router_ids, index.router_counts),
        (NodeKind.PEERING, index.peering_ids, index.peering_counts),
    ):
        ids = _column(ids_raw, numpy.uint32).astype(numpy.int64)
        if not len(ids):
            continue
        counts = _column(counts_raw, numpy.uint32).astype(numpy.int64)
        rows = numpy.repeat(numpy.arange(len(counts), dtype=numpy.int64), counts)
        order = numpy.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        sorted_rows = rows[order]
        starts = numpy.flatnonzero(
            numpy.r_[True, sorted_ids[1:] != sorted_ids[:-1]]
        )
        ends = numpy.r_[starts[1:], len(sorted_ids)]
        for begin, finish in zip(starts, ends):
            name = index.names[int(sorted_ids[begin])]
            existing = results.get(name)
            first_row = int(sorted_rows[begin])
            last_row = int(sorted_rows[finish - 1])
            present = int(finish - begin)
            if existing is not None:
                # A name that switched kinds: merge, keep the later kind.
                first_row = min(first_row, _row_of(index, existing.first_seen))
                last_row = max(last_row, _row_of(index, existing.last_seen))
                present += existing.snapshots
            results[name] = NodeLifetime(
                name=name,
                kind=kind,
                first_seen=_utc(timestamps[first_row]),
                last_seen=_utc(timestamps[last_row]),
                snapshots=present,
            )
    return results


def _utc(epoch) -> datetime:
    return datetime.fromtimestamp(int(epoch), tz=timezone.utc)


def _row_of(index: SnapshotIndex, when: datetime) -> int:
    """Row of an exact timestamp previously read from the index."""
    return bisect.bisect_left(index.timestamps, int(when.timestamp()))


@dataclass(frozen=True)
class LinkLifetime:
    """When one link (canonical endpoint/label orientation) was observed."""

    node_a: str
    label_a: str
    node_b: str
    label_b: str
    first_seen: datetime
    last_seen: datetime
    snapshots: int


def _canonical_link_keys(
    index: SnapshotIndex, lo: int, hi: int
) -> tuple[numpy.ndarray, numpy.ndarray]:
    """(packed key, was-swapped) per link row in ``[lo, hi)``.

    Orientation is canonicalised on the node *ids* (stable within one
    index) so the two directions of a link share a key.  Keys pack the
    four ids into one int64 for fast grouping; id tables comfortably fit
    the packing budget (validated below).
    """
    a_nodes = _column(index.link_a_nodes, numpy.uint32)[lo:hi].astype(numpy.int64)
    b_nodes = _column(index.link_b_nodes, numpy.uint32)[lo:hi].astype(numpy.int64)
    a_labels = _column(index.link_a_labels, numpy.uint32)[lo:hi].astype(numpy.int64)
    b_labels = _column(index.link_b_labels, numpy.uint32)[lo:hi].astype(numpy.int64)
    names = max(1, len(index.names))
    labels = max(1, len(index.labels))
    if names * names * labels * labels >= 2**62:
        raise ColumnarCapacityError(
            f"string tables too large to pack link keys "
            f"({names} names, {labels} labels)"
        )
    swapped = b_nodes < a_nodes
    first_node = numpy.where(swapped, b_nodes, a_nodes)
    second_node = numpy.where(swapped, a_nodes, b_nodes)
    first_label = numpy.where(swapped, b_labels, a_labels)
    second_label = numpy.where(swapped, a_labels, b_labels)
    keys = (
        (first_node * names + second_node) * labels + first_label
    ) * labels + second_label
    return keys, swapped


def _unpack_link_key(index: SnapshotIndex, key: int) -> tuple[str, str, str, str]:
    names = max(1, len(index.names))
    labels = max(1, len(index.labels))
    key, second_label = divmod(key, labels)
    key, first_label = divmod(key, labels)
    first_node, second_node = divmod(key, names)
    return (
        index.names[first_node],
        index.labels[first_label],
        index.names[second_node],
        index.labels[second_label],
    )


def link_lifetimes(
    index: SnapshotIndex,
) -> dict[tuple[str, str, str, str], LinkLifetime]:
    """First/last observation per link identity across the whole series.

    Parallel links that share both endpoints *and* both labels (the
    paper's VODAFONE case) collapse onto one key; their presence counts
    then exceed the snapshot count, which is itself the signal that the
    key hides a parallel group.
    """
    if not len(index.link_counts):
        return {}
    keys, _ = _canonical_link_keys(index, 0, len(index.link_a_nodes))
    rows = _link_row_of(index)
    timestamps = _column(index.timestamps, numpy.int64)
    order = numpy.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_rows = rows[order]
    starts = numpy.flatnonzero(numpy.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
    ends = numpy.r_[starts[1:], len(sorted_keys)]
    results: dict[tuple[str, str, str, str], LinkLifetime] = {}
    for begin, finish in zip(starts, ends):
        node_a, label_a, node_b, label_b = _unpack_link_key(
            index, int(sorted_keys[begin])
        )
        results[(node_a, label_a, node_b, label_b)] = LinkLifetime(
            node_a=node_a,
            label_a=label_a,
            node_b=node_b,
            label_b=label_b,
            first_seen=_utc(timestamps[int(sorted_rows[begin])]),
            last_seen=_utc(timestamps[int(sorted_rows[finish - 1])]),
            snapshots=int(finish - begin),
        )
    return results


@dataclass(frozen=True)
class LoadMatrix:
    """Dense per-link load series: one row per snapshot, one column per link.

    ``forward`` holds the egress load leaving the canonical first endpoint
    (``keys[k][0]``), ``reverse`` the opposite direction; ``nan`` marks
    snapshots where the link was absent.  Where duplicate parallel links
    share a key, the last one in document order wins — the matrix is a
    per-identity view, not a parallel-group accounting.
    """

    timestamps: numpy.ndarray  #: int64 epoch seconds, one per snapshot row
    keys: tuple[tuple[str, str, str, str], ...]
    forward: numpy.ndarray  #: float64 (snapshots, links)
    reverse: numpy.ndarray  #: float64 (snapshots, links)

    def times(self) -> list[datetime]:
        """The snapshot timestamps as aware datetimes."""
        return [_utc(epoch) for epoch in self.timestamps]

    def series(
        self, key: tuple[str, str, str, str]
    ) -> tuple[numpy.ndarray, numpy.ndarray]:
        """(forward, reverse) load series of one link key."""
        column = self.keys.index(key)
        return self.forward[:, column], self.reverse[:, column]


def load_matrix(
    index: SnapshotIndex,
    start: datetime | None = None,
    end: datetime | None = None,
) -> LoadMatrix:
    """Materialise the windowed per-link load matrix from the columns.

    This is the input shape the upgrade detector and the TE-style studies
    want: aligned time series per link, built in one grouping pass.
    """
    rows, lo, hi = _rows_and_bounds(index, start, end)
    keys, swapped = _canonical_link_keys(index, lo, hi)
    link_rows = _link_row_of(index)[lo:hi] - rows.start
    unique_keys, columns = numpy.unique(keys, return_inverse=True)
    snapshots = len(rows)
    forward = numpy.full((snapshots, len(unique_keys)), numpy.nan)
    reverse = numpy.full((snapshots, len(unique_keys)), numpy.nan)
    a_loads = _column(index.link_a_loads, numpy.float64)[lo:hi]
    b_loads = _column(index.link_b_loads, numpy.float64)[lo:hi]
    forward[link_rows, columns] = numpy.where(swapped, b_loads, a_loads)
    reverse[link_rows, columns] = numpy.where(swapped, a_loads, b_loads)
    return LoadMatrix(
        timestamps=_column(index.timestamps, numpy.int64)[
            rows.start : rows.stop
        ].copy(),
        keys=tuple(_unpack_link_key(index, int(key)) for key in unique_keys),
        forward=forward,
        reverse=reverse,
    )
