"""Vectorised analyses straight over columnar snapshot indexes.

The Section 5 figures reduce a map's whole history to a handful of
aggregates: directed load distributions (Figures 5a/5b), per-link series,
and appearance/disappearance times behind the evolution narratives.  Once
a :class:`~repro.dataset.index.SnapshotIndex` exists, those aggregates
fall out of its flat columns with numpy — no ``MapSnapshot`` objects are
materialised, which is what makes a full-series figure pass cheap enough
to iterate on.

The accessors mirror their object-path equivalents exactly:
:func:`load_samples` returns the same
:class:`~repro.analysis.loads.LoadSamples` (element for element) that
``collect_load_samples(load_all(...))`` would, so every downstream
figure function works unchanged.

Every accessor takes a :data:`ColumnSource` — either an in-heap
:class:`~repro.dataset.index.SnapshotIndex` or the zero-copy
:class:`~repro.dataset.query.MappedIndex` engine.  The two expose the
same column attributes; over a mapped engine nothing here copies the
corpus, so whole-series figures run directly against the shared
``index.bin`` mapping.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import TYPE_CHECKING, Union

import numpy

from repro.analysis.imbalance import MINIMUM_ACTIVE_LOAD, ImbalanceResult
from repro.analysis.infrastructure import InfrastructureEvolution
from repro.analysis.loads import LoadSamples
from repro.analysis.timeseries import TimeSeries
from repro.dataset.index import SnapshotIndex
from repro.errors import AnalysisError, ColumnarCapacityError
from repro.topology.model import NodeKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataset.query import MappedIndex

#: Any columnar snapshot source: the in-heap index or the mmap engine.
ColumnSource = Union["SnapshotIndex", "MappedIndex"]

__all__ = [
    "ColumnSource",
    "DirectedLoadColumns",
    "LinkLifetime",
    "LoadMatrix",
    "NodeLifetime",
    "count_series",
    "directed_load_columns",
    "imbalance_samples",
    "link_lifetimes",
    "link_load_series",
    "load_matrix",
    "load_samples",
    "node_lifetimes",
]


def _column(raw, dtype) -> numpy.ndarray:
    """Zero-copy numpy view over one columnar source column.

    ``SnapshotIndex`` columns are ``array.array`` buffers, the mapped
    engine's are already numpy views (numpy backend) or ``memoryview``
    casts (stdlib backend); all reach numpy without copying.
    """
    if isinstance(raw, numpy.ndarray):
        return raw
    if len(raw) == 0:
        return numpy.empty(0, dtype=dtype)
    return numpy.frombuffer(raw, dtype=dtype)


def _rows_and_bounds(
    index: ColumnSource, start: datetime | None, end: datetime | None
) -> tuple[range, int, int]:
    """Selected snapshot rows plus their link-column slice bounds."""
    rows = index.rows_in_window(start, end)
    link_counts = _column(index.link_counts, numpy.uint32)
    offsets = numpy.concatenate(
        ([0], numpy.cumsum(link_counts, dtype=numpy.int64))
    )
    return rows, int(offsets[rows.start]), int(offsets[rows.stop])


def _link_row_of(index: ColumnSource) -> numpy.ndarray:
    """For every link column element, the snapshot row it belongs to."""
    counts = _column(index.link_counts, numpy.uint32).astype(numpy.int64)
    return numpy.repeat(numpy.arange(len(counts), dtype=numpy.int64), counts)


def _external_links(index: ColumnSource) -> numpy.ndarray:
    """Boolean per link column element: does it touch a peering?

    Fast path: when no name is ever used both as a router and as a
    peering (the invariable case — kinds follow the map's naming
    convention), peering-ness is a property of the name id and one table
    lookup vectorises the whole corpus.  Otherwise each snapshot's own
    peering membership decides, row by row.
    """
    a_nodes = _column(index.link_a_nodes, numpy.uint32)
    b_nodes = _column(index.link_b_nodes, numpy.uint32)
    as_router = numpy.zeros(len(index.names), dtype=bool)
    as_peering = numpy.zeros(len(index.names), dtype=bool)
    router_ids = _column(index.router_ids, numpy.uint32)
    peering_ids = _column(index.peering_ids, numpy.uint32)
    if len(router_ids):
        as_router[router_ids] = True
    if len(peering_ids):
        as_peering[peering_ids] = True
    if not bool(numpy.any(as_router & as_peering)):
        return as_peering[a_nodes] | as_peering[b_nodes]
    # Ambiguous names: fall back to per-snapshot membership.
    external = numpy.zeros(len(a_nodes), dtype=bool)
    link_offset = peering_offset = 0
    for row in range(len(index)):
        links = index.link_counts[row]
        peerings = index.peering_counts[row]
        members = peering_ids[peering_offset : peering_offset + peerings]
        segment = slice(link_offset, link_offset + links)
        external[segment] = numpy.isin(a_nodes[segment], members) | numpy.isin(
            b_nodes[segment], members
        )
        link_offset += links
        peering_offset += peerings
    return external


@dataclass(frozen=True)
class DirectedLoadColumns:
    """Every directed load sample of a window, as aligned flat arrays.

    Samples interleave each link's two directions (a→b then b→a) in link
    order — the same order the object path walks them.
    """

    loads: numpy.ndarray  #: float64, percent
    hours: numpy.ndarray  #: int64, UTC hour of day per sample
    weekdays: numpy.ndarray  #: int64, 0=Monday .. 6=Sunday
    external: numpy.ndarray  #: bool, link touches a peering
    snapshot_rows: numpy.ndarray  #: int64, index row per sample

    def __len__(self) -> int:
        return len(self.loads)


def directed_load_columns(
    index: ColumnSource,
    start: datetime | None = None,
    end: datetime | None = None,
) -> DirectedLoadColumns:
    """All directed load samples in ``[start, end)``, fully vectorised."""
    rows, lo, hi = _rows_and_bounds(index, start, end)
    span = hi - lo
    loads = numpy.empty(2 * span, dtype=numpy.float64)
    loads[0::2] = _column(index.link_a_loads, numpy.float64)[lo:hi]
    loads[1::2] = _column(index.link_b_loads, numpy.float64)[lo:hi]

    link_rows = _link_row_of(index)[lo:hi]
    timestamps = _column(index.timestamps, numpy.int64)
    epochs = timestamps[link_rows]
    hours = (epochs // 3600) % 24
    weekdays = (epochs // 86400 + 3) % 7  # epoch day zero was a Thursday

    external = _external_links(index)[lo:hi]
    return DirectedLoadColumns(
        loads=loads,
        hours=numpy.repeat(hours, 2),
        weekdays=numpy.repeat(weekdays, 2),
        external=numpy.repeat(external, 2),
        snapshot_rows=numpy.repeat(link_rows, 2),
    )


def load_samples(
    index: ColumnSource,
    start: datetime | None = None,
    end: datetime | None = None,
) -> LoadSamples:
    """The Figure 5 sample set, identical to the object path's.

    Equivalent to ``collect_load_samples(load_all(store, map))`` — same
    values in the same order — but computed from columns, without
    reconstructing a single snapshot.
    """
    columns = directed_load_columns(index, start, end)
    samples = LoadSamples()
    external = columns.external
    samples.internal = columns.loads[~external].tolist()
    samples.external = columns.loads[external].tolist()
    samples.hours = columns.hours.tolist()
    samples.weekdays = columns.weekdays.tolist()
    samples._combined = columns.loads.tolist()
    return samples


@dataclass(frozen=True)
class NodeLifetime:
    """When one node was first and last observed, and how often."""

    name: str
    kind: NodeKind
    first_seen: datetime
    last_seen: datetime
    snapshots: int


def node_lifetimes(index: ColumnSource) -> dict[str, NodeLifetime]:
    """First/last appearance and presence count per node, vectorised.

    The evolution analyses (Figure 4, the make-before-break narratives)
    reduce to exactly these boundaries; grouping the membership columns
    answers them for a whole map history at once.
    """
    timestamps = _column(index.timestamps, numpy.int64)
    results: dict[str, NodeLifetime] = {}
    for kind, ids_raw, counts_raw in (
        (NodeKind.ROUTER, index.router_ids, index.router_counts),
        (NodeKind.PEERING, index.peering_ids, index.peering_counts),
    ):
        ids = _column(ids_raw, numpy.uint32).astype(numpy.int64)
        if not len(ids):
            continue
        counts = _column(counts_raw, numpy.uint32).astype(numpy.int64)
        rows = numpy.repeat(numpy.arange(len(counts), dtype=numpy.int64), counts)
        order = numpy.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        sorted_rows = rows[order]
        starts = numpy.flatnonzero(
            numpy.r_[True, sorted_ids[1:] != sorted_ids[:-1]]
        )
        ends = numpy.r_[starts[1:], len(sorted_ids)]
        for begin, finish in zip(starts, ends):
            name = index.names[int(sorted_ids[begin])]
            existing = results.get(name)
            first_row = int(sorted_rows[begin])
            last_row = int(sorted_rows[finish - 1])
            present = int(finish - begin)
            if existing is not None:
                # A name that switched kinds: merge, keep the later kind.
                first_row = min(first_row, _row_of(index, existing.first_seen))
                last_row = max(last_row, _row_of(index, existing.last_seen))
                present += existing.snapshots
            results[name] = NodeLifetime(
                name=name,
                kind=kind,
                first_seen=_utc(timestamps[first_row]),
                last_seen=_utc(timestamps[last_row]),
                snapshots=present,
            )
    return results


def _utc(epoch) -> datetime:
    return datetime.fromtimestamp(int(epoch), tz=timezone.utc)


def _row_of(index: ColumnSource, when: datetime) -> int:
    """Row of an exact timestamp previously read from the index."""
    return bisect.bisect_left(index.timestamps, int(when.timestamp()))


@dataclass(frozen=True)
class LinkLifetime:
    """When one link (canonical endpoint/label orientation) was observed."""

    node_a: str
    label_a: str
    node_b: str
    label_b: str
    first_seen: datetime
    last_seen: datetime
    snapshots: int


def _canonical_link_keys(
    index: ColumnSource, lo: int, hi: int
) -> tuple[numpy.ndarray, numpy.ndarray]:
    """(packed key, was-swapped) per link row in ``[lo, hi)``.

    Orientation is canonicalised on the node *ids* (stable within one
    index) so the two directions of a link share a key.  Keys pack the
    four ids into one int64 for fast grouping; id tables comfortably fit
    the packing budget (validated below).
    """
    a_nodes = _column(index.link_a_nodes, numpy.uint32)[lo:hi].astype(numpy.int64)
    b_nodes = _column(index.link_b_nodes, numpy.uint32)[lo:hi].astype(numpy.int64)
    a_labels = _column(index.link_a_labels, numpy.uint32)[lo:hi].astype(numpy.int64)
    b_labels = _column(index.link_b_labels, numpy.uint32)[lo:hi].astype(numpy.int64)
    names = max(1, len(index.names))
    labels = max(1, len(index.labels))
    if names * names * labels * labels >= 2**62:
        raise ColumnarCapacityError(
            f"string tables too large to pack link keys "
            f"({names} names, {labels} labels)"
        )
    swapped = b_nodes < a_nodes
    first_node = numpy.where(swapped, b_nodes, a_nodes)
    second_node = numpy.where(swapped, a_nodes, b_nodes)
    first_label = numpy.where(swapped, b_labels, a_labels)
    second_label = numpy.where(swapped, a_labels, b_labels)
    keys = (
        (first_node * names + second_node) * labels + first_label
    ) * labels + second_label
    return keys, swapped


def _unpack_link_key(index: ColumnSource, key: int) -> tuple[str, str, str, str]:
    names = max(1, len(index.names))
    labels = max(1, len(index.labels))
    key, second_label = divmod(key, labels)
    key, first_label = divmod(key, labels)
    first_node, second_node = divmod(key, names)
    return (
        index.names[first_node],
        index.labels[first_label],
        index.names[second_node],
        index.labels[second_label],
    )


def link_lifetimes(
    index: ColumnSource,
) -> dict[tuple[str, str, str, str], LinkLifetime]:
    """First/last observation per link identity across the whole series.

    Parallel links that share both endpoints *and* both labels (the
    paper's VODAFONE case) collapse onto one key; their presence counts
    then exceed the snapshot count, which is itself the signal that the
    key hides a parallel group.
    """
    if not len(index.link_counts):
        return {}
    keys, _ = _canonical_link_keys(index, 0, len(index.link_a_nodes))
    rows = _link_row_of(index)
    timestamps = _column(index.timestamps, numpy.int64)
    order = numpy.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_rows = rows[order]
    starts = numpy.flatnonzero(numpy.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
    ends = numpy.r_[starts[1:], len(sorted_keys)]
    results: dict[tuple[str, str, str, str], LinkLifetime] = {}
    for begin, finish in zip(starts, ends):
        node_a, label_a, node_b, label_b = _unpack_link_key(
            index, int(sorted_keys[begin])
        )
        results[(node_a, label_a, node_b, label_b)] = LinkLifetime(
            node_a=node_a,
            label_a=label_a,
            node_b=node_b,
            label_b=label_b,
            first_seen=_utc(timestamps[int(sorted_rows[begin])]),
            last_seen=_utc(timestamps[int(sorted_rows[finish - 1])]),
            snapshots=int(finish - begin),
        )
    return results


@dataclass(frozen=True)
class LoadMatrix:
    """Dense per-link load series: one row per snapshot, one column per link.

    ``forward`` holds the egress load leaving the canonical first endpoint
    (``keys[k][0]``), ``reverse`` the opposite direction; ``nan`` marks
    snapshots where the link was absent.  Where duplicate parallel links
    share a key, the last one in document order wins — the matrix is a
    per-identity view, not a parallel-group accounting.
    """

    timestamps: numpy.ndarray  #: int64 epoch seconds, one per snapshot row
    keys: tuple[tuple[str, str, str, str], ...]
    forward: numpy.ndarray  #: float64 (snapshots, links)
    reverse: numpy.ndarray  #: float64 (snapshots, links)

    def times(self) -> list[datetime]:
        """The snapshot timestamps as aware datetimes."""
        return [_utc(epoch) for epoch in self.timestamps]

    def series(
        self, key: tuple[str, str, str, str]
    ) -> tuple[numpy.ndarray, numpy.ndarray]:
        """(forward, reverse) load series of one link key."""
        column = self.keys.index(key)
        return self.forward[:, column], self.reverse[:, column]


def load_matrix(
    index: ColumnSource,
    start: datetime | None = None,
    end: datetime | None = None,
) -> LoadMatrix:
    """Materialise the windowed per-link load matrix from the columns.

    This is the input shape the upgrade detector and the TE-style studies
    want: aligned time series per link, built in one grouping pass.
    """
    rows, lo, hi = _rows_and_bounds(index, start, end)
    keys, swapped = _canonical_link_keys(index, lo, hi)
    link_rows = _link_row_of(index)[lo:hi] - rows.start
    unique_keys, columns = numpy.unique(keys, return_inverse=True)
    snapshots = len(rows)
    forward = numpy.full((snapshots, len(unique_keys)), numpy.nan)
    reverse = numpy.full((snapshots, len(unique_keys)), numpy.nan)
    a_loads = _column(index.link_a_loads, numpy.float64)[lo:hi]
    b_loads = _column(index.link_b_loads, numpy.float64)[lo:hi]
    forward[link_rows, columns] = numpy.where(swapped, b_loads, a_loads)
    reverse[link_rows, columns] = numpy.where(swapped, a_loads, b_loads)
    return LoadMatrix(
        timestamps=_column(index.timestamps, numpy.int64)[
            rows.start : rows.stop
        ].copy(),
        keys=tuple(_unpack_link_key(index, int(key)) for key in unique_keys),
        forward=forward,
        reverse=reverse,
    )


def imbalance_samples(
    index: ColumnSource,
    start: datetime | None = None,
    end: datetime | None = None,
    minimum_load: float = MINIMUM_ACTIVE_LOAD,
) -> ImbalanceResult:
    """The Figure 5c sample set, identical to the object path's.

    Equivalent to ``collect_imbalances(load_all(store, map))`` — the same
    imbalances in the same order — computed by grouping the flat link
    columns.  Group ordering follows the object path exactly: snapshots
    in time order, groups within a snapshot by their sorted endpoint
    *names* (hence the rank table below), and each group contributing
    its forward direction before its backward one.
    """
    result = ImbalanceResult()
    rows, lo, hi = _rows_and_bounds(index, start, end)
    if hi == lo:
        return result
    a_nodes = _column(index.link_a_nodes, numpy.uint32)[lo:hi].astype(numpy.int64)
    b_nodes = _column(index.link_b_nodes, numpy.uint32)[lo:hi].astype(numpy.int64)
    a_loads = _column(index.link_a_loads, numpy.float64)[lo:hi]
    b_loads = _column(index.link_b_loads, numpy.float64)[lo:hi]
    link_rows = _link_row_of(index)[lo:hi]
    external = _external_links(index)[lo:hi]

    # Rank of every name id in lexicographic name order, so id-space
    # comparisons reproduce the object path's string-sorted group keys.
    names = index.names
    count = max(1, len(names))
    order_by_name = numpy.asarray(
        sorted(range(len(names)), key=names.__getitem__), dtype=numpy.int64
    )
    rank = numpy.empty(count, dtype=numpy.int64)
    rank[order_by_name] = numpy.arange(len(names), dtype=numpy.int64)

    a_rank = rank[a_nodes]
    b_rank = rank[b_nodes]
    swapped = b_rank < a_rank
    left = numpy.where(swapped, b_rank, a_rank)
    right = numpy.where(swapped, a_rank, b_rank)
    forward = numpy.where(swapped, b_loads, a_loads)  # egress from left
    backward = numpy.where(swapped, a_loads, b_loads)  # egress from right
    if len(index) * count * count >= 2**62:
        raise ColumnarCapacityError(
            f"series too large to pack group keys "
            f"({len(index)} rows, {count} names)"
        )
    keys = (link_rows * count + left) * count + right
    order = numpy.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = numpy.flatnonzero(numpy.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
    ends = numpy.r_[starts[1:], len(sorted_keys)]
    for begin, finish in zip(starts, ends):
        members = order[begin:finish]
        bucket = result.external if external[members[0]] else result.internal
        for loads in (forward[members], backward[members]):
            active = loads[loads >= minimum_load]
            if len(active) >= 2:
                bucket.append(float(active.max() - active.min()))
    return result


def count_series(
    index: ColumnSource,
    start: datetime | None = None,
    end: datetime | None = None,
) -> InfrastructureEvolution:
    """The Figure 4 evolution series, identical to the object path's.

    Equivalent to ``evolution_from_snapshots(load_all(store, map))`` —
    the router and internal/external link counts come straight from the
    count columns, the internal/external split from the membership
    columns.

    Raises:
        AnalysisError: the window selects no snapshots (the object path
            refuses an empty series the same way).
    """
    rows, lo, hi = _rows_and_bounds(index, start, end)
    if len(rows) == 0:
        raise AnalysisError("no snapshots given")
    routers = _column(index.router_counts, numpy.uint32)[rows.start : rows.stop]
    totals = _column(index.link_counts, numpy.uint32)[
        rows.start : rows.stop
    ].astype(numpy.int64)
    link_rows = _link_row_of(index)[lo:hi] - rows.start
    external = _external_links(index)[lo:hi]
    external_counts = numpy.bincount(
        link_rows, weights=external.astype(numpy.float64), minlength=len(rows)
    ).astype(numpy.int64)
    internal_counts = totals - external_counts
    times = tuple(
        _utc(epoch)
        for epoch in _column(index.timestamps, numpy.int64)[rows.start : rows.stop]
    )
    return InfrastructureEvolution(
        map_name=index.map_name,
        routers=TimeSeries(times, tuple(float(v) for v in routers)),
        internal_links=TimeSeries(times, tuple(float(v) for v in internal_counts)),
        external_links=TimeSeries(times, tuple(float(v) for v in external_counts)),
    )


def link_load_series(
    index: ColumnSource,
    key: tuple[str, str, str, str],
    start: datetime | None = None,
    end: datetime | None = None,
) -> tuple[TimeSeries, TimeSeries]:
    """(forward, reverse) load series of one link identity.

    ``key`` is ``(node_a, label_a, node_b, label_b)`` in either
    orientation; *forward* is the egress direction leaving ``key[0]``,
    matching ``link.load_from(key[0])`` on the object path.  Snapshots
    where the link is absent contribute no point (unlike
    :func:`load_matrix`, which marks them ``nan``).  A key hiding
    same-labelled parallel links yields duplicate timestamps and is
    rejected by :class:`~repro.analysis.timeseries.TimeSeries` — exactly
    as building the series from snapshots would be.
    """
    node_a, label_a, node_b, label_b = key
    try:
        ids = (
            index.names.index(node_a),
            index.labels.index(label_a),
            index.names.index(node_b),
            index.labels.index(label_b),
        )
    except ValueError:
        return TimeSeries((), ()), TimeSeries((), ())
    rows, lo, hi = _rows_and_bounds(index, start, end)
    a_nodes = _column(index.link_a_nodes, numpy.uint32)[lo:hi]
    a_labels = _column(index.link_a_labels, numpy.uint32)[lo:hi]
    b_nodes = _column(index.link_b_nodes, numpy.uint32)[lo:hi]
    b_labels = _column(index.link_b_labels, numpy.uint32)[lo:hi]
    mask = (
        (a_nodes == ids[0])
        & (a_labels == ids[1])
        & (b_nodes == ids[2])
        & (b_labels == ids[3])
    ) | (
        (a_nodes == ids[2])
        & (a_labels == ids[3])
        & (b_nodes == ids[0])
        & (b_labels == ids[1])
    )
    selected = numpy.flatnonzero(mask)
    if not len(selected):
        return TimeSeries((), ()), TimeSeries((), ())
    a_loads = _column(index.link_a_loads, numpy.float64)[lo:hi][selected]
    b_loads = _column(index.link_b_loads, numpy.float64)[lo:hi][selected]
    from_a = a_nodes[selected] == ids[0]
    forward = numpy.where(from_a, a_loads, b_loads)
    reverse = numpy.where(from_a, b_loads, a_loads)
    epochs = _column(index.timestamps, numpy.int64)[
        _link_row_of(index)[lo:hi][selected]
    ]
    times = tuple(_utc(epoch) for epoch in epochs)
    return (
        TimeSeries(times, tuple(float(v) for v in forward)),
        TimeSeries(times, tuple(float(v) for v in reverse)),
    )
