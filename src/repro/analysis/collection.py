"""Collection-quality analytics (the library behind Figures 2 and 3).

These functions compute the paper's collection statistics from any sorted
timestamp list — a catalog of stored files, an availability model's tick
list, or a crawler's log — so the benches and the CLI share one
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

import numpy

from repro.analysis.stats import cdf
from repro.constants import SNAPSHOT_INTERVAL
from repro.dataset.catalog import TimeFrame, time_frames_from


@dataclass(frozen=True, slots=True)
class CollectionQuality:
    """Summary of one map's collection record."""

    snapshot_count: int
    time_frames: tuple[TimeFrame, ...]
    fraction_at_resolution: float
    fraction_within_one_miss: float
    longest_gap: timedelta

    @property
    def covered(self) -> timedelta:
        """Total time inside collection segments."""
        return sum((frame.duration for frame in self.time_frames), timedelta())


def inter_snapshot_distances(stamps: list[datetime]) -> numpy.ndarray:
    """Seconds between consecutive snapshots (Figure 3's variable)."""
    if len(stamps) < 2:
        return numpy.empty(0)
    seconds = numpy.array([stamp.timestamp() for stamp in stamps])
    return numpy.diff(seconds)


def distance_cdf(stamps: list[datetime]) -> tuple[numpy.ndarray, numpy.ndarray]:
    """The Figure 3 CDF for one timestamp list."""
    return cdf(inter_snapshot_distances(stamps))


def collection_quality(
    stamps: list[datetime],
    resolution: timedelta = SNAPSHOT_INTERVAL,
    segment_gap: timedelta = timedelta(days=2),
) -> CollectionQuality:
    """Everything Figures 2 and 3 report, for one timestamp list.

    Args:
        stamps: sorted snapshot times.
        resolution: the nominal cadence (five minutes).
        segment_gap: gaps beyond this split Figure 2 segments.
    """
    distances = inter_snapshot_distances(stamps)
    if distances.size == 0:
        return CollectionQuality(
            snapshot_count=len(stamps),
            time_frames=tuple(time_frames_from(stamps, segment_gap)),
            fraction_at_resolution=0.0,
            fraction_within_one_miss=0.0,
            longest_gap=timedelta(0),
        )
    nominal = resolution.total_seconds()
    return CollectionQuality(
        snapshot_count=len(stamps),
        time_frames=tuple(time_frames_from(stamps, segment_gap)),
        fraction_at_resolution=float(numpy.mean(distances <= nominal + 1.0)),
        fraction_within_one_miss=float(numpy.mean(distances <= 2 * nominal + 1.0)),
        longest_gap=timedelta(seconds=float(distances.max())),
    )
