"""Analysis library: the paper's Section 5 computations.

Each module regenerates the data behind one part of the evaluation:

* :mod:`repro.analysis.infrastructure` — router/link count evolution
  (Figures 4a, 4b) and the structural-event detector behind the paper's
  make-before-break / maintenance narratives;
* :mod:`repro.analysis.degrees` — router degree CCDF (Figure 4c);
* :mod:`repro.analysis.loads` — hour-of-day load percentiles (Figure 5a)
  and internal/external load CDFs (Figure 5b);
* :mod:`repro.analysis.imbalance` — ECMP imbalance CDFs (Figure 5c);
* :mod:`repro.analysis.upgrades` — link-upgrade detection and PeeringDB
  correlation (Figure 6);
* :mod:`repro.analysis.stats` / :mod:`repro.analysis.timeseries` — shared
  CDF/percentile/time-series plumbing;
* :mod:`repro.analysis.columnar` — the same aggregates computed straight
  from a :class:`~repro.dataset.index.SnapshotIndex`'s columns, without
  materialising snapshots.

Every analysis works on iterables of :class:`~repro.topology.model.MapSnapshot`
so it runs equally on simulator output and on YAML files read back from a
collected dataset.
"""

from repro.analysis.stats import cdf, ccdf, fraction_at_most, percentile_bands
from repro.analysis.timeseries import TimeSeries, detect_steps
from repro.analysis.infrastructure import (
    InfrastructureEvolution,
    infrastructure_evolution,
    structural_events,
)
from repro.analysis.degrees import degree_ccdf, degree_statistics
from repro.analysis.loads import (
    HourOfDayBands,
    LoadSamples,
    WeeklyContrast,
    collect_load_samples,
    hour_of_day_bands,
    load_cdfs,
    weekly_contrast,
)
from repro.analysis.collection import (
    CollectionQuality,
    collection_quality,
    distance_cdf,
    inter_snapshot_distances,
)
from repro.analysis.capacity import (
    PeeringVolume,
    peering_volume,
    total_egress_capacity_gbps,
    total_egress_volume_gbps,
    volume_gbps,
)
from repro.analysis.congestion import (
    CongestionEpisode,
    CongestionSummary,
    congestion_rate_by_hour,
    find_congestion,
)
from repro.analysis.imbalance import (
    ImbalanceResult,
    collect_imbalances,
    imbalance_cdfs,
    imbalance_values,
)
from repro.analysis.sites import (
    SiteGrowth,
    fastest_growing_sites,
    site_census,
    site_growth,
)
from repro.analysis.diversity import (
    DiversityReport,
    core_path_diversity,
    edge_disjoint_paths,
)
from repro.analysis.columnar import (
    ColumnSource,
    DirectedLoadColumns,
    LinkLifetime,
    LoadMatrix,
    NodeLifetime,
    count_series,
    directed_load_columns,
    imbalance_samples,
    link_lifetimes,
    link_load_series,
    load_matrix,
    load_samples,
    node_lifetimes,
)
from repro.analysis.upgrades import (
    CorrelatedUpgrade,
    DowngradeEvent,
    GroupObservation,
    UpgradeEvent,
    correlate_with_peeringdb,
    detect_downgrades,
    detect_upgrades,
    scan_all_peerings,
    track_peering_group,
)

__all__ = [
    "cdf",
    "ccdf",
    "fraction_at_most",
    "percentile_bands",
    "TimeSeries",
    "detect_steps",
    "InfrastructureEvolution",
    "infrastructure_evolution",
    "structural_events",
    "degree_ccdf",
    "degree_statistics",
    "HourOfDayBands",
    "LoadSamples",
    "WeeklyContrast",
    "collect_load_samples",
    "hour_of_day_bands",
    "load_cdfs",
    "weekly_contrast",
    "CollectionQuality",
    "collection_quality",
    "distance_cdf",
    "inter_snapshot_distances",
    "PeeringVolume",
    "peering_volume",
    "total_egress_capacity_gbps",
    "total_egress_volume_gbps",
    "volume_gbps",
    "CongestionEpisode",
    "CongestionSummary",
    "congestion_rate_by_hour",
    "find_congestion",
    "ColumnSource",
    "DirectedLoadColumns",
    "LinkLifetime",
    "LoadMatrix",
    "NodeLifetime",
    "count_series",
    "directed_load_columns",
    "imbalance_samples",
    "link_lifetimes",
    "link_load_series",
    "load_matrix",
    "load_samples",
    "node_lifetimes",
    "DowngradeEvent",
    "detect_downgrades",
    "scan_all_peerings",
    "ImbalanceResult",
    "collect_imbalances",
    "imbalance_cdfs",
    "imbalance_values",
    "SiteGrowth",
    "fastest_growing_sites",
    "site_census",
    "site_growth",
    "DiversityReport",
    "core_path_diversity",
    "edge_disjoint_paths",
    "UpgradeEvent",
    "CorrelatedUpgrade",
    "GroupObservation",
    "correlate_with_peeringdb",
    "detect_upgrades",
    "track_peering_group",
]
