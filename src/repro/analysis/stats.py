"""Distribution helpers: CDFs, CCDFs, percentile bands."""

from __future__ import annotations

import numpy


def cdf(values) -> tuple[numpy.ndarray, numpy.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative fractions).

    The fraction at index i is the probability of a value <= values[i].
    """
    data = numpy.sort(numpy.asarray(values, dtype=float))
    if data.size == 0:
        return numpy.empty(0), numpy.empty(0)
    fractions = numpy.arange(1, data.size + 1) / data.size
    return data, fractions


def ccdf(values) -> tuple[numpy.ndarray, numpy.ndarray]:
    """Complementary CDF: (sorted values, fraction strictly greater).

    This is the quantity of Figure 4c: the fraction of routers whose
    degree exceeds x.
    """
    data, fractions = cdf(values)
    return data, 1.0 - fractions


def fraction_at_most(values, threshold: float) -> float:
    """Fraction of values <= threshold (paper statements like "75 % of
    the loads are below 33 %")."""
    data = numpy.asarray(values, dtype=float)
    if data.size == 0:
        return 0.0
    return float(numpy.mean(data <= threshold))


def percentile_bands(
    values, percentiles: tuple[float, ...] = (1, 25, 50, 75, 99)
) -> dict[float, float]:
    """Named percentiles of a sample (the Figure 5a whisker set)."""
    data = numpy.asarray(values, dtype=float)
    if data.size == 0:
        return {p: float("nan") for p in percentiles}
    results = numpy.percentile(data, percentiles)
    return {p: float(v) for p, v in zip(percentiles, results)}


def interpolate_cdf_at(
    xs: numpy.ndarray, fractions: numpy.ndarray, value: float
) -> float:
    """CDF evaluated at an arbitrary point (step interpolation)."""
    if xs.size == 0:
        return 0.0
    index = numpy.searchsorted(xs, value, side="right")
    if index == 0:
        return 0.0
    return float(fractions[index - 1])
