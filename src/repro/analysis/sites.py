"""Per-site growth attribution.

Section 5 leaves as future work to "use router names to identify the
spread of these variations in the network, e.g., to find whether some
parts of the network are growing faster than others".  Router names carry
their site code (``fra-fr5-pb6-nc5`` → ``fra``), so growth can be
attributed per site by diffing snapshots and bucketing changes by name
prefix.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.topology.diff import diff_snapshots
from repro.topology.model import MapSnapshot


def site_of(router_name: str) -> str:
    """The site code prefix of an OVH-style router name."""
    return router_name.split("-", 1)[0]


@dataclass(frozen=True, slots=True)
class SiteGrowth:
    """Accumulated change at one site between two observation points."""

    site: str
    routers_added: int
    routers_removed: int
    links_added: int
    links_removed: int

    @property
    def router_delta(self) -> int:
        return self.routers_added - self.routers_removed

    @property
    def link_delta(self) -> int:
        return self.links_added - self.links_removed


def site_census(snapshot: MapSnapshot) -> dict[str, int]:
    """Routers per site in one snapshot."""
    census: dict[str, int] = defaultdict(int)
    for node in snapshot.routers:
        census[site_of(node.name)] += 1
    return dict(census)


def site_link_census(snapshot: MapSnapshot) -> dict[str, int]:
    """Link endpoints per site (a link counts at both its ends)."""
    census: dict[str, int] = defaultdict(int)
    for link in snapshot.links:
        for name in link.nodes:
            if snapshot.nodes[name].is_router:
                census[site_of(name)] += 1
    return dict(census)


def site_growth(first: MapSnapshot, last: MapSnapshot) -> list[SiteGrowth]:
    """Attribute the structural change between two snapshots to sites.

    Router changes come from the snapshot diff; link changes are counted
    at each router endpoint (so an inter-site link credits both sites).
    """
    diff = diff_snapshots(first, last)
    routers_added: dict[str, int] = defaultdict(int)
    routers_removed: dict[str, int] = defaultdict(int)
    for name in diff.added_routers:
        routers_added[site_of(name)] += 1
    for name in diff.removed_routers:
        routers_removed[site_of(name)] += 1

    before = site_link_census(first)
    after = site_link_census(last)
    sites = (
        set(routers_added)
        | set(routers_removed)
        | set(before)
        | set(after)
    )
    result = []
    for site in sorted(sites):
        delta = after.get(site, 0) - before.get(site, 0)
        result.append(
            SiteGrowth(
                site=site,
                routers_added=routers_added.get(site, 0),
                routers_removed=routers_removed.get(site, 0),
                links_added=max(delta, 0),
                links_removed=max(-delta, 0),
            )
        )
    return result


def fastest_growing_sites(
    snapshots: Iterable[MapSnapshot], top: int = 5
) -> list[SiteGrowth]:
    """Rank sites by link growth between the first and last snapshot."""
    ordered = sorted(snapshots, key=lambda snapshot: snapshot.timestamp)
    if len(ordered) < 2:
        return []
    growth = site_growth(ordered[0], ordered[-1])
    growth.sort(key=lambda item: item.link_delta, reverse=True)
    return growth[:top]
