"""Exception hierarchy for the repro library.

The paper's processing scripts "report an error when a link is not connected to
two (distinct) routers" and reject malformed SVGs.  Every failure mode from
Section 4 ("Parsing sanity checks" and "The OVH Weather dataset") has a typed
exception so callers can build the unprocessed-file accounting of Table 2.
"""

from __future__ import annotations

from argparse import ArgumentTypeError


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GeometryError(ReproError, ValueError):
    """Raised for degenerate geometric inputs (zero-length lines, empty boxes).

    Also a :class:`ValueError`: geometric degeneracy is an invalid-argument
    condition, and callers validating inputs expect the stdlib taxonomy.
    """


class SvgError(ReproError):
    """Base class for SVG-level problems."""


class MalformedSvgError(SvgError):
    """The SVG document is not well-formed XML or has invalid attribute values.

    The paper observes such files in the wild: "we observed some SVG files to
    be invalid, e.g., with malformed attribute values".
    """


class ParseError(ReproError):
    """Base class for extraction failures (Algorithms 1 and 2)."""


class IncompleteLinkError(ParseError):
    """A link was not constructed from exactly two arrows and two loads."""


class LoadRangeError(ParseError):
    """A link load lies outside the valid [0, 100] range."""


class AttributionError(ParseError):
    """Base class for Algorithm 2 object-attribution failures."""


class MissingRouterError(AttributionError):
    """A link end intersects no router box.

    The paper attributes these to SVGs "lacking elements, such as OVH routers,
    resulting in a failure to find intersections for a given link".
    """


class SelfLinkError(AttributionError):
    """A link was attributed the same router at both ends."""


class MissingLabelError(AttributionError):
    """A link end has no label within the attribution distance threshold."""

    def __init__(self, message: str, distance: float | None = None) -> None:
        super().__init__(message)
        self.distance = distance


class IsolatedRouterError(ParseError):
    """A router was attributed no link at all after attribution completed."""


class SchemaError(ReproError):
    """A YAML document does not conform to the dataset schema."""


class DatasetError(ReproError):
    """Base class for dataset-store problems (missing snapshots, bad layout)."""


class SnapshotNotFoundError(DatasetError):
    """No snapshot exists for the requested map and timestamp."""


class WorkerCountError(DatasetError, ValueError):
    """An invalid worker-count request (negative, non-integral, bad string).

    Also a :class:`ValueError`: worker counts arrive from CLI flags and
    plain library calls alike, and callers validating arguments expect
    the stdlib taxonomy.
    """


class SnapshotIndexError(DatasetError):
    """The columnar snapshot index is missing, corrupt, or incompatible.

    Callers on the read path treat this as "no index": the YAML series is
    authoritative and the index is only ever a derived cache, so a bad
    index file must degrade to a slower load, never to a failed one.
    """


class StaleIndexError(SnapshotIndexError):
    """A memory-mapped index generation superseded on disk.

    The zero-copy query engine maps one *generation* of ``index.bin``;
    an incremental :func:`repro.dataset.index.build_index` replaces the
    file atomically, so existing mappings keep serving their generation
    (the old inode stays alive under the mapping) but
    :meth:`~repro.dataset.query.MappedIndex.check_generation` reports
    the supersession with this error so long-lived readers can reopen.
    """


class QueryError(DatasetError, ValueError):
    """An invalid scan request to the zero-copy query engine.

    Raised for malformed predicates (an empty node name, a load bound
    outside [0, 100], an end before a start), unknown backend names, and
    scans against a closed engine.  Also a :class:`ValueError`: predicate
    validation is plain argument validation.
    """


class AnalysisError(ReproError, ValueError):
    """An analysis invoked on inputs it cannot summarise (an empty or
    single-snapshot series where a trend or changelog needs at least two
    observations).  Also a :class:`ValueError`."""


class OptionsError(ReproError, TypeError):
    """Contradictory parse-configuration arguments.

    Raised when a caller mixes ``options=ParseOptions(...)`` with one of
    the deprecated per-knob keywords it replaced — the request is
    ambiguous, so neither side can win silently.  Also a
    :class:`TypeError`, matching how the stdlib reports incompatible
    argument combinations.
    """


class StatsMergeError(DatasetError, ValueError):
    """Two processing-stat accumulators that cannot be folded together.

    Merging per-map accounting across maps would silently corrupt the
    Table 2 bookkeeping, so the mismatch is an error, not a best-effort
    union.
    """


class UnknownEndpointError(ReproError, KeyError):
    """A node queried on a link it is not an endpoint of.

    Also a :class:`KeyError`: the link's two ends form a tiny mapping
    from node name to :class:`~repro.topology.model.LinkEnd`, and lookup
    misses follow the stdlib taxonomy.
    """


class NameRegistryError(ReproError, ValueError):
    """A router/peering name request the deterministic generator must refuse
    (reserving a name that was already issued)."""


class ColumnarCapacityError(ReproError, OverflowError):
    """A columnar computation would overflow its packed representation.

    The vectorised link-key packing fits four string-table ids into one
    int64; tables large enough to break that bound abort loudly instead
    of aliasing keys.  Also an :class:`OverflowError`.
    """


class CliUsageError(ReproError, ArgumentTypeError):
    """An invalid command-line argument value.

    Subclasses :class:`argparse.ArgumentTypeError` so argparse renders
    the message verbatim in its usage error, while staying catchable as
    part of the typed :class:`ReproError` hierarchy.
    """


class StaticAnalysisError(ReproError):
    """The :mod:`repro.devtools` checker cannot run at all.

    Raised for setup problems — an undiscoverable repository root, an
    unreadable rule input — never for rule findings, which are reported
    as data so the CLI can render them and exit 1.
    """


class ConcurrencyError(ReproError):
    """The runtime lock sanitizer observed a broken locking invariant.

    Raised only in the opt-in instrumented-lock mode
    (:func:`repro.devtools.sanitizer.install_sanitizer`) when a thread
    re-acquires a non-reentrant lock it already holds — turning what
    would be a silent deadlock into an immediate, attributable failure.
    Lock-order inversions and long-held locks are reported as findings
    instead of raised, since the offending thread is not the one that
    would hang.
    """


class IngestError(DatasetError):
    """The ingestion daemon cannot run or resume.

    Raised for configuration problems (a non-positive queue bound, a
    resume requested against a dataset with no prior state) and for
    storage backends that cannot honour the crash-safety contract —
    never for per-file parse failures, which are accounted as data in
    :class:`~repro.dataset.processor.ProcessingStats`.
    """


class JournalError(IngestError):
    """The write-ahead journal cannot be appended to or replayed.

    Corrupt *tail* records are not an error — an append-only journal
    truncated by a crash is expected and recovery simply drops the torn
    tail — but corruption in the middle of the file, or an unwritable
    journal path, aborts loudly instead of silently dropping history.
    """


class ServerError(ReproError):
    """The HTTP serving layer cannot start or route.

    Raised for configuration problems (an invalid bind address, a
    non-positive cache capacity) and for programming errors in route
    registration — never for per-request failures, which map to HTTP
    status codes (400/404/503) so one bad query can't take a worker
    thread down.
    """


class SimulationError(ReproError):
    """Invalid simulation configuration or impossible event timeline."""


class TelemetryError(ReproError):
    """Misused metrics API or an unreadable metrics snapshot.

    Raised for programming errors (decreasing a counter, re-registering a
    name under a different kind) and for corrupt ``--metrics-out``
    artefacts — never from the instrumented hot paths themselves, which
    only ever add observations.
    """
