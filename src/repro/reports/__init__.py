"""Report generation: one bundle summarising a dataset like the paper does.

``build_report`` walks a collected-and-processed dataset directory and
produces a markdown report plus SVG charts covering the paper's analysis
surface — collection quality (Figures 2/3), infrastructure (Figure 4),
loads and ECMP balance (Figure 5), and the dataset tables.  Surfaced on
the command line as ``repro-weather report``.
"""

from repro.reports.builder import ReportBuilder, build_report

__all__ = ["ReportBuilder", "build_report"]
