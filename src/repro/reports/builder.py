"""Build the dataset report bundle."""

from __future__ import annotations

from pathlib import Path

import numpy

from repro.analysis.collection import collection_quality
from repro.analysis.congestion import find_congestion
from repro.analysis.degrees import degree_statistics
from repro.analysis.imbalance import collect_imbalances, imbalance_cdfs
from repro.analysis.loads import (
    collect_load_samples,
    hour_of_day_bands,
    load_cdfs,
    weekly_contrast,
)
from repro.analysis.stats import fraction_at_most
from repro.charts.svgchart import BandSeries, ChartRenderer, Series, StepSeries
from repro.constants import MapName
from repro.dataset.catalog import DatasetCatalog
from repro.dataset.loader import load_all
from repro.dataset.store import DatasetStore
from repro.dataset.summary import build_table1, build_table2, format_table1, format_table2


class ReportBuilder:
    """Accumulates sections and writes the bundle."""

    def __init__(self, output_dir: str | Path) -> None:
        self.output_dir = Path(output_dir)
        self._sections: list[str] = []
        self._charts_written: list[str] = []

    def add_section(self, title: str, body: str) -> None:
        """Append one markdown section."""
        self._sections.append(f"## {title}\n\n{body.strip()}\n")

    def add_chart(self, name: str, chart: ChartRenderer) -> str:
        """Write a chart SVG next to the report; returns its relative path."""
        relative = f"charts/{name}.svg"
        chart.write(self.output_dir / relative)
        self._charts_written.append(relative)
        return relative

    def write(self, title: str = "OVH Weather dataset report") -> Path:
        """Write ``report.md`` and return its path."""
        self.output_dir.mkdir(parents=True, exist_ok=True)
        target = self.output_dir / "report.md"
        parts = [f"# {title}\n"]
        parts.extend(self._sections)
        if self._charts_written:
            parts.append("## Charts\n")
            parts.extend(
                f"![{name}]({name})\n" for name in self._charts_written
            )
        target.write_text("\n".join(parts), encoding="utf-8")
        return target


def _collection_section(builder: ReportBuilder, store: DatasetStore) -> list[MapName]:
    catalog = DatasetCatalog(store, kind="yaml")
    lines = []
    present: list[MapName] = []
    for map_name in MapName:
        stamps = catalog.timestamps(map_name)
        if not stamps:
            continue
        present.append(map_name)
        quality = collection_quality(stamps)
        lines.append(
            f"* **{map_name.title}** — {quality.snapshot_count} snapshots in "
            f"{len(quality.time_frames)} segment(s); "
            f"{quality.fraction_at_resolution * 100:.1f} % at the 5-minute "
            f"resolution; longest gap {quality.longest_gap}."
        )
    builder.add_section("Collection quality (Figures 2-3)", "\n".join(lines))
    return present


def _tables_section(builder: ReportBuilder, store: DatasetStore, present: list[MapName]) -> None:
    from repro.dataset.loader import latest_snapshot

    snapshots = {}
    for map_name in present:
        snapshot = latest_snapshot(store, map_name)
        if snapshot is not None:
            snapshots[map_name] = snapshot
    body = "```\n" + format_table1(build_table1(snapshots)) + "\n```"
    builder.add_section("Topology summary (Table 1, latest snapshots)", body)
    body = "```\n" + format_table2(build_table2(store)) + "\n```"
    builder.add_section("Dataset files (Table 2)", body)


def _topology_section(builder: ReportBuilder, store: DatasetStore, map_name: MapName) -> None:
    from repro.analysis.degrees import degree_ccdf
    from repro.dataset.loader import latest_snapshot

    snapshot = latest_snapshot(store, map_name)
    if snapshot is None:
        return
    stats = degree_statistics(snapshot)
    degrees, fractions = degree_ccdf(snapshot)
    chart = ChartRenderer(
        title=f"Router degree CCDF — {map_name.title}",
        x_label="node degree",
        y_label="CCDF",
        x_log=True,
    )
    chart.add_series(StepSeries(name="degree", xs=tuple(degrees), ys=tuple(fractions)))
    chart_path = builder.add_chart(f"degree_ccdf_{map_name.value}", chart)
    builder.add_section(
        f"Router degrees (Figure 4c) — {map_name.title}",
        f"{stats.count} routers; mean degree {stats.mean:.1f}, max {stats.max}. "
        f"{stats.fraction_single_link * 100:.0f} % have a single link, "
        f"{stats.fraction_over_20 * 100:.0f} % have more than 20 links.\n\n"
        f"Chart: `{chart_path}`",
    )


def _loads_section(builder: ReportBuilder, store: DatasetStore, map_name: MapName) -> None:
    snapshots = load_all(store, map_name)
    if not snapshots:
        return
    samples = collect_load_samples(snapshots)
    if not samples.all_loads:
        return

    lines = [
        f"{len(samples):,} directed load samples over "
        f"{len(snapshots)} snapshots.",
        f"* {fraction_at_most(samples.all_loads, 33) * 100:.0f} % of loads at or "
        "below 33 %; "
        f"{(1 - fraction_at_most(samples.all_loads, 60)) * 100:.1f} % above 60 %.",
    ]
    if samples.internal and samples.external:
        lines.append(
            f"* internal links average {numpy.mean(samples.internal):.1f} %, "
            f"external {numpy.mean(samples.external):.1f} %."
        )

    cdf_chart = ChartRenderer(
        title=f"Load CDF — {map_name.title}", x_label="load (%)", y_label="CDF"
    )
    for name, (xs, fractions) in load_cdfs(samples).items():
        stride = max(1, xs.size // 400)
        cdf_chart.add_series(
            StepSeries(name=name, xs=tuple(xs[::stride]), ys=tuple(fractions[::stride]))
        )
    builder.add_chart(f"load_cdf_{map_name.value}", cdf_chart)

    hours_present = {snapshot.timestamp.hour for snapshot in snapshots}
    if len(hours_present) >= 12:
        bands = hour_of_day_bands(samples)
        lines.append(
            f"* median load troughs at {bands.median_trough_hour():02d}:00 and "
            f"peaks at {bands.median_peak_hour():02d}:00."
        )
        band_chart = ChartRenderer(
            title=f"Load by hour — {map_name.title}",
            x_label="hour of day",
            y_label="load (%)",
        )
        band_chart.add_band(
            BandSeries(
                name="p25-p75",
                xs=tuple(float(h) for h in bands.hours),
                lows=bands.bands[25.0],
                highs=bands.bands[75.0],
            )
        )
        band_chart.add_series(
            Series(
                name="median",
                xs=tuple(float(h) for h in bands.hours),
                ys=bands.bands[50.0],
            )
        )
        builder.add_chart(f"load_hours_{map_name.value}", band_chart)

    contrast = weekly_contrast(samples)
    if contrast.weekday_samples and contrast.weekend_samples:
        lines.append(
            f"* weekends run at {contrast.weekend_ratio * 100:.0f} % of the "
            "weekday load level."
        )

    congestion = find_congestion(snapshots)
    lines.append(
        f"* congestion (load ≥85 %) touches "
        f"{congestion.congested_fraction * 100:.2f} % of directed samples"
        + (
            f"; longest episode {congestion.longest.duration} "
            f"({congestion.longest.source} → {congestion.longest.target})."
            if congestion.longest is not None
            else "; no sustained episodes."
        )
    )

    imbalances = collect_imbalances(snapshots)
    if imbalances.all_values:
        lines.append(
            f"* ECMP imbalance at or below 1 % for "
            f"{imbalances.fraction_within(1.0) * 100:.0f} % of directed parallel "
            "groups."
        )
        imbalance_chart = ChartRenderer(
            title=f"Imbalance CDF — {map_name.title}",
            x_label="imbalance (%)",
            y_label="CDF",
        )
        for name, (xs, fractions) in imbalance_cdfs(imbalances).items():
            if name == "all" or xs.size == 0:
                continue
            stride = max(1, xs.size // 400)
            imbalance_chart.add_series(
                StepSeries(
                    name=name, xs=tuple(xs[::stride]), ys=tuple(fractions[::stride])
                )
            )
        builder.add_chart(f"imbalance_cdf_{map_name.value}", imbalance_chart)

    builder.add_section(
        f"Link loads and ECMP (Figure 5) — {map_name.title}", "\n".join(lines)
    )


def build_report(
    dataset_dir: str | Path,
    output_dir: str | Path,
    detail_map: MapName = MapName.EUROPE,
) -> Path:
    """Build the full report bundle for one dataset directory.

    Args:
        dataset_dir: a collected-and-processed dataset.
        output_dir: where ``report.md`` and ``charts/`` land.
        detail_map: the map given per-figure treatment (the paper details
            Europe); falls back to the first map present.

    Returns:
        The path of the written ``report.md``.
    """
    store = DatasetStore(dataset_dir)
    builder = ReportBuilder(output_dir)
    present = _collection_section(builder, store)
    if not present:
        builder.add_section("Empty dataset", "No processed snapshots found.")
        return builder.write()
    if detail_map not in present:
        detail_map = present[0]
    _tables_section(builder, store, present)
    _topology_section(builder, store, detail_map)
    _loads_section(builder, store, detail_map)
    return builder.write()
