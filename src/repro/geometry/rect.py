"""Axis-aligned rectangles — the white boxes of routers and link labels."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.segment import Segment

_EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle in SVG screen coordinates.

    ``x``/``y`` is the top-left corner, matching the ``<rect>`` SVG element.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise GeometryError(
                f"rectangle must have positive extent, got {self.width}x{self.height}"
            )

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> Rect:
        """Build a rectangle centred on ``center``."""
        return cls(center.x - width / 2.0, center.y - height / 2.0, width, height)

    @classmethod
    def bounding(cls, points: list[Point]) -> Rect:
        """Smallest rectangle containing every point (degenerate inputs padded)."""
        if not points:
            raise GeometryError("cannot bound an empty point list")
        min_x = min(p.x for p in points)
        max_x = max(p.x for p in points)
        min_y = min(p.y for p in points)
        max_y = max(p.y for p in points)
        width = max(max_x - min_x, _EPSILON * 10)
        height = max(max_y - min_y, _EPSILON * 10)
        return cls(min_x, min_y, width, height)

    @property
    def center(self) -> Point:
        """Centre point of the rectangle."""
        return Point(self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def left(self) -> float:
        return self.x

    @property
    def right(self) -> float:
        return self.x + self.width

    @property
    def top(self) -> float:
        return self.y

    @property
    def bottom(self) -> float:
        return self.y + self.height

    def corners(self) -> list[Point]:
        """Corner points, clockwise from the top-left."""
        return [
            Point(self.left, self.top),
            Point(self.right, self.top),
            Point(self.right, self.bottom),
            Point(self.left, self.bottom),
        ]

    def edges(self) -> Iterator[Segment]:
        """The four boundary segments."""
        corner_list = self.corners()
        for index in range(4):
            yield Segment(corner_list[index], corner_list[(index + 1) % 4])

    def contains(self, point: Point, tolerance: float = _EPSILON) -> bool:
        """Whether ``point`` is inside or on the boundary."""
        return (
            self.left - tolerance <= point.x <= self.right + tolerance
            and self.top - tolerance <= point.y <= self.bottom + tolerance
        )

    def intersects_line(self, segment: Segment) -> bool:
        """Whether the *infinite line* supporting ``segment`` crosses the box.

        This is the intersection test of Algorithm 2 (Lines 3-4): routers and
        labels are matched to a link by intersecting the link's line with
        their white boxes.  Implemented with the Liang-Barsky slab method on
        the unbounded parameter range, unrolled per axis — this is the
        single hottest call of bulk processing.
        """
        start = segment.start
        end = segment.end
        origin_x = start.x
        origin_y = start.y
        direction_x = end.x - origin_x
        direction_y = end.y - origin_y
        low_x = self.x
        high_x = self.x + self.width
        low_y = self.y
        high_y = self.y + self.height
        t_min = float("-inf")
        t_max = float("inf")

        if -_EPSILON < direction_x < _EPSILON:
            if origin_x < low_x - _EPSILON or origin_x > high_x + _EPSILON:
                return False
        else:
            t_low = (low_x - origin_x) / direction_x
            t_high = (high_x - origin_x) / direction_x
            if t_low > t_high:
                t_low, t_high = t_high, t_low
            if t_low > t_min:
                t_min = t_low
            if t_high < t_max:
                t_max = t_high

        if -_EPSILON < direction_y < _EPSILON:
            if origin_y < low_y - _EPSILON or origin_y > high_y + _EPSILON:
                return False
        else:
            t_low = (low_y - origin_y) / direction_y
            t_high = (high_y - origin_y) / direction_y
            if t_low > t_high:
                t_low, t_high = t_high, t_low
            if t_low > t_min:
                t_min = t_low
            if t_high < t_max:
                t_max = t_high

        return t_min <= t_max + _EPSILON

    def intersects_segment(self, segment: Segment) -> bool:
        """Whether the *finite* segment crosses or touches the box."""
        if self.contains(segment.start) or self.contains(segment.end):
            return True
        return any(edge.intersects_segment(segment) for edge in self.edges())

    def intersects_rect(self, other: Rect) -> bool:
        """Whether two rectangles overlap (touching counts)."""
        return not (
            self.right < other.left - _EPSILON
            or other.right < self.left - _EPSILON
            or self.bottom < other.top - _EPSILON
            or other.bottom < self.top - _EPSILON
        )

    def distance_to_point(self, point: Point) -> float:
        """Distance from ``point`` to the rectangle (0 if inside).

        Algorithm 2's sanity check asserts "the distance between the link end
        and its label is below a defined threshold"; this is that distance.
        """
        dx = self.x - point.x
        if dx < 0.0:
            dx = point.x - (self.x + self.width)
            if dx < 0.0:
                dx = 0.0
        dy = self.y - point.y
        if dy < 0.0:
            dy = point.y - (self.y + self.height)
            if dy < 0.0:
                dy = 0.0
        return math.hypot(dx, dy)

    def expanded(self, margin: float) -> Rect:
        """Rectangle grown by ``margin`` pixels on every side."""
        return Rect(
            self.x - margin,
            self.y - margin,
            self.width + 2 * margin,
            self.height + 2 * margin,
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        """``(x, y, width, height)`` tuple."""
        return (self.x, self.y, self.width, self.height)
