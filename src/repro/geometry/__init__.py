"""2D geometry primitives.

These back both sides of the reproduction: the map renderer places boxes and
arrow polygons on a canvas, and Algorithm 2 re-associates them afterwards by
computing line/rectangle intersections and point distances in the same 2D
image space.
"""

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment

__all__ = ["Point", "Rect", "Segment"]
