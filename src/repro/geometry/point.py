"""Immutable 2D point/vector type."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError


@dataclass(frozen=True, slots=True)
class Point:
    """A point (or free vector) in the SVG 2D image space.

    SVG uses screen coordinates: x grows rightwards, y grows downwards.  All
    geometry in this library follows that convention.
    """

    x: float
    y: float

    def __add__(self, other: Point) -> Point:
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: Point) -> Point:
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> Point:
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> Point:
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> Point:
        return Point(-self.x, -self.y)

    def dot(self, other: Point) -> float:
        """Dot product with ``other`` treated as a vector."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: Point) -> float:
        """Z component of the 3D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of this point treated as a vector."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: Point) -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: Point) -> Point:
        """Point halfway between ``self`` and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def normalized(self) -> Point:
        """Unit vector in the direction of this vector.

        Raises:
            GeometryError: if this is the zero vector (also a ValueError).
        """
        length = self.norm()
        if length == 0.0:
            raise GeometryError("cannot normalize the zero vector")
        return Point(self.x / length, self.y / length)

    def perpendicular(self) -> Point:
        """Vector rotated 90 degrees counter-clockwise (in screen coords)."""
        return Point(-self.y, self.x)

    def rotated(self, angle: float) -> Point:
        """Vector rotated by ``angle`` radians around the origin."""
        cos_a = math.cos(angle)
        sin_a = math.sin(angle)
        return Point(self.x * cos_a - self.y * sin_a, self.x * sin_a + self.y * cos_a)

    def is_close(self, other: Point, tolerance: float = 1e-9) -> bool:
        """Whether both coordinates match within ``tolerance``."""
        return abs(self.x - other.x) <= tolerance and abs(self.y - other.y) <= tolerance

    def as_tuple(self) -> tuple[float, float]:
        """``(x, y)`` tuple, handy for serialisation."""
        return (self.x, self.y)
