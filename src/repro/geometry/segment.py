"""Line segments and the infinite lines they span.

Algorithm 2 of the paper "computes the straight line in the 2D space
represented by a link with the middle coordinates of the basis of the two
arrows of the link", then intersects that line with router and label boxes.
``Segment`` implements exactly that: a finite segment plus helpers that treat
it as an infinite line where the paper requires it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError
from repro.geometry.point import Point

_EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class Segment:
    """A directed segment from ``start`` to ``end``."""

    start: Point
    end: Point

    def __post_init__(self) -> None:
        if self.start.distance_to(self.end) < _EPSILON:
            raise GeometryError(
                f"degenerate segment: both endpoints at {self.start.as_tuple()}"
            )

    @property
    def direction(self) -> Point:
        """Unit vector pointing from ``start`` to ``end``."""
        return (self.end - self.start).normalized()

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    @property
    def midpoint(self) -> Point:
        """Centre point of the segment."""
        return self.start.midpoint(self.end)

    def point_at(self, t: float) -> Point:
        """Point at parameter ``t`` (0 at ``start``, 1 at ``end``).

        Values outside [0, 1] extrapolate along the supporting line, which is
        what Algorithm 2 needs: labels and routers sit slightly beyond the
        arrow bases.
        """
        return self.start + (self.end - self.start) * t

    def project(self, point: Point) -> float:
        """Parameter ``t`` of the orthogonal projection of ``point``."""
        span = self.end - self.start
        return (point - self.start).dot(span) / span.dot(span)

    def distance_to_point(self, point: Point) -> float:
        """Distance from ``point`` to the *segment* (clamped projection)."""
        t = min(1.0, max(0.0, self.project(point)))
        return self.point_at(t).distance_to(point)

    def line_distance_to_point(self, point: Point) -> float:
        """Distance from ``point`` to the supporting *infinite line*."""
        span = self.end - self.start
        return abs(span.cross(point - self.start)) / span.norm()

    def line_intersection(self, other: Segment) -> Point | None:
        """Intersection point of the two supporting infinite lines.

        Returns ``None`` when the lines are parallel (including collinear).
        """
        d1 = self.end - self.start
        d2 = other.end - other.start
        denominator = d1.cross(d2)
        if abs(denominator) < _EPSILON:
            return None
        t = (other.start - self.start).cross(d2) / denominator
        return self.point_at(t)

    def intersects_segment(self, other: Segment) -> bool:
        """Whether the two finite segments properly intersect or touch."""

        def orientation(a: Point, b: Point, c: Point) -> int:
            value = (b - a).cross(c - a)
            if abs(value) < _EPSILON:
                return 0
            return 1 if value > 0 else -1

        def on_segment(a: Point, b: Point, c: Point) -> bool:
            return (
                min(a.x, b.x) - _EPSILON <= c.x <= max(a.x, b.x) + _EPSILON
                and min(a.y, b.y) - _EPSILON <= c.y <= max(a.y, b.y) + _EPSILON
            )

        o1 = orientation(self.start, self.end, other.start)
        o2 = orientation(self.start, self.end, other.end)
        o3 = orientation(other.start, other.end, self.start)
        o4 = orientation(other.start, other.end, self.end)

        if o1 != o2 and o3 != o4:
            return True
        if o1 == 0 and on_segment(self.start, self.end, other.start):
            return True
        if o2 == 0 and on_segment(self.start, self.end, other.end):
            return True
        if o3 == 0 and on_segment(other.start, other.end, self.start):
            return True
        if o4 == 0 and on_segment(other.start, other.end, self.end):
            return True
        return False

    def extended(self, before: float = 0.0, after: float = 0.0) -> Segment:
        """Segment lengthened by ``before`` pixels behind ``start`` and
        ``after`` pixels beyond ``end`` along the supporting line."""
        direction = self.direction
        return Segment(self.start - direction * before, self.end + direction * after)

    def reversed(self) -> Segment:
        """Same segment with swapped direction."""
        return Segment(self.end, self.start)
