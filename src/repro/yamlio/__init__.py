"""YAML serialisation of parsed map snapshots.

The released OVH Weather dataset pairs every SVG with a processed YAML file
(Table 2: 541,819 YAML files, ~8x smaller than the SVGs).  This package
defines that document schema and the (de)serialisers, with strict schema
validation on load so corrupt files surface as
:class:`~repro.errors.SchemaError` instead of silent bad data.
"""

from repro.yamlio.serialize import snapshot_to_yaml, write_snapshot
from repro.yamlio.deserialize import snapshot_from_yaml, read_snapshot

__all__ = [
    "snapshot_to_yaml",
    "write_snapshot",
    "snapshot_from_yaml",
    "read_snapshot",
]
