"""YAML document → MapSnapshot, with schema validation."""

from __future__ import annotations

from datetime import datetime
from pathlib import Path

import yaml

from repro.constants import MapName
from repro.errors import SchemaError
from repro.telemetry import get_registry
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node, NodeKind

#: libyaml's parser when compiled in, the pure-Python one otherwise.  Both
#: build identical documents; the C parser is ~7x faster on this schema,
#: which is what feeds the columnar index at acceptable cost.
_LOADER = getattr(yaml, "CSafeLoader", yaml.SafeLoader)


def _require(document: dict, key: str, kind: type) -> object:
    """Fetch a typed field or raise a SchemaError naming it."""
    if key not in document:
        raise SchemaError(f"document missing required field {key!r}")
    value = document[key]
    if not isinstance(value, kind):
        raise SchemaError(
            f"field {key!r} should be {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _parse_end(raw: object, side: str) -> LinkEnd:
    """Validate and build one link end."""
    if not isinstance(raw, dict):
        raise SchemaError(f"link end {side!r} is not a mapping")
    node = raw.get("node")
    label = raw.get("label")
    load = raw.get("load")
    if not isinstance(node, str) or not node:
        raise SchemaError(f"link end {side!r} has no node name")
    if not isinstance(label, str):
        raise SchemaError(f"link end {side!r} has no label")
    if not isinstance(load, (int, float)) or isinstance(load, bool):
        raise SchemaError(f"link end {side!r} load is not a number")
    return LinkEnd(node=node, label=label, load=float(load))


def snapshot_from_document(document: dict) -> MapSnapshot:
    """Build a snapshot from a parsed YAML document."""
    if not isinstance(document, dict):
        raise SchemaError("YAML root is not a mapping")

    map_value = _require(document, "map", str)
    try:
        map_name = MapName(map_value)
    except ValueError as exc:
        raise SchemaError(f"unknown map name {map_value!r}") from exc

    timestamp_text = _require(document, "timestamp", str)
    try:
        timestamp = datetime.fromisoformat(timestamp_text)
    except ValueError as exc:
        raise SchemaError(f"bad timestamp {timestamp_text!r}") from exc

    snapshot = MapSnapshot(map_name=map_name, timestamp=timestamp)
    for name in _require(document, "routers", list):
        if not isinstance(name, str):
            raise SchemaError("router names must be strings")
        snapshot.add_node(Node(name=name, kind=NodeKind.ROUTER))
    for name in _require(document, "peerings", list):
        if not isinstance(name, str):
            raise SchemaError("peering names must be strings")
        snapshot.add_node(Node(name=name, kind=NodeKind.PEERING))

    for raw_link in _require(document, "links", list):
        if not isinstance(raw_link, dict):
            raise SchemaError("link entries must be mappings")
        snapshot.add_link(
            Link(a=_parse_end(raw_link.get("a"), "a"), b=_parse_end(raw_link.get("b"), "b"))
        )
    return snapshot


def snapshot_from_yaml(text: str) -> MapSnapshot:
    """Parse YAML text into a snapshot.

    Raises:
        SchemaError: on YAML syntax errors or schema violations.
    """
    docs = get_registry().counter(
        "repro_yaml_docs_total", "YAML documents by operation"
    )
    try:
        document = yaml.load(text, Loader=_LOADER)
        snapshot = snapshot_from_document(document)
    except (yaml.YAMLError, SchemaError) as exc:
        get_registry().counter(
            "repro_yaml_errors_total", "YAML documents rejected by operation"
        ).inc(1, op="deserialize")
        if isinstance(exc, SchemaError):
            raise
        raise SchemaError(f"invalid YAML: {exc}") from exc
    docs.inc(1, op="deserialize")
    return snapshot


def read_snapshot(path: str | Path) -> MapSnapshot:
    """Read one snapshot from a YAML file."""
    return snapshot_from_yaml(Path(path).read_text(encoding="utf-8"))
