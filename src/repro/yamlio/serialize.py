"""MapSnapshot → YAML document."""

from __future__ import annotations

from pathlib import Path

import yaml

from repro.topology.model import MapSnapshot

#: libyaml's emitter when compiled in, the pure-Python one otherwise.  The
#: two produce byte-identical documents for this schema (asserted by the
#: test suite), so which one a machine uses never shows in the dataset.
_DUMPER = getattr(yaml, "CSafeDumper", yaml.SafeDumper)


def snapshot_to_document(snapshot: MapSnapshot) -> dict:
    """Build the plain-data document for one snapshot.

    The schema mirrors what the extraction produces: the map, the
    observation time, the two node lists, and one entry per link carrying
    both ends (node, label, egress load).
    """
    return {
        "map": snapshot.map_name.value,
        "timestamp": snapshot.timestamp.isoformat(),
        "routers": sorted(node.name for node in snapshot.routers),
        "peerings": sorted(node.name for node in snapshot.peerings),
        "links": [
            {
                "a": {
                    "node": link.a.node,
                    "label": link.a.label,
                    "load": link.a.load,
                },
                "b": {
                    "node": link.b.node,
                    "label": link.b.label,
                    "load": link.b.load,
                },
            }
            for link in snapshot.links
        ],
    }


def snapshot_to_yaml(snapshot: MapSnapshot) -> str:
    """Serialise one snapshot to YAML text."""
    return yaml.dump(
        snapshot_to_document(snapshot),
        Dumper=_DUMPER,
        sort_keys=False,
        default_flow_style=None,
        width=120,
    )


def write_snapshot(snapshot: MapSnapshot, path: str | Path) -> int:
    """Write one snapshot to a YAML file; returns the byte count."""
    text = snapshot_to_yaml(snapshot)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = text.encode("utf-8")
    path.write_bytes(data)
    return len(data)
