"""MapSnapshot → YAML document."""

from __future__ import annotations

from pathlib import Path

import yaml
from yaml.nodes import MappingNode, ScalarNode, SequenceNode

from repro.telemetry import get_registry
from repro.topology.model import MapSnapshot

#: libyaml's emitter when compiled in, the pure-Python one otherwise.  The
#: two produce byte-identical documents for this schema (asserted by the
#: test suite), so which one a machine uses never shows in the dataset.
_DUMPER = getattr(yaml, "CSafeDumper", yaml.SafeDumper)

_STR_TAG = "tag:yaml.org,2002:str"
_FLOAT_TAG = "tag:yaml.org,2002:float"
_INT_TAG = "tag:yaml.org,2002:int"
_BOOL_TAG = "tag:yaml.org,2002:bool"
_SEQ_TAG = "tag:yaml.org,2002:seq"
_MAP_TAG = "tag:yaml.org,2002:map"

_INF = float("inf")


class _Unrepresentable(Exception):
    """A value outside the fast emitter's type set — use yaml.dump."""


def snapshot_to_document(snapshot: MapSnapshot) -> dict:
    """Build the plain-data document for one snapshot.

    The schema mirrors what the extraction produces: the map, the
    observation time, the two node lists, and one entry per link carrying
    both ends (node, label, egress load).
    """
    return {
        "map": snapshot.map_name.value,
        "timestamp": snapshot.timestamp.isoformat(),
        "routers": sorted(node.name for node in snapshot.routers),
        "peerings": sorted(node.name for node in snapshot.peerings),
        "links": [
            {
                "a": {
                    "node": link.a.node,
                    "label": link.a.label,
                    "load": link.a.load,
                },
                "b": {
                    "node": link.b.node,
                    "label": link.b.label,
                    "load": link.b.load,
                },
            }
            for link in snapshot.links
        ],
    }


def _number_scalar(value) -> ScalarNode:
    """A load value rendered exactly as ``SafeRepresenter`` would.

    The extraction always produces floats, but hand-built snapshots may
    carry ints (or anything else — dispatch on the runtime type the way
    ``yaml.dump``'s representer table does).
    """
    kind = type(value)
    if kind is float:
        if value != value:
            text = ".nan"
        elif value == _INF:
            text = ".inf"
        elif value == -_INF:
            text = "-.inf"
        else:
            text = repr(value).lower()
            if "." not in text and "e" in text:
                # "1e17" → "1.0e17": keep the float tag implicit for
                # parsers that require a dot in scientific notation.
                text = text.replace("e", ".0e", 1)
        return ScalarNode(_FLOAT_TAG, text)
    if kind is bool:
        return ScalarNode(_BOOL_TAG, "true" if value else "false")
    if kind is int:
        return ScalarNode(_INT_TAG, str(value))
    raise _Unrepresentable


def _str_scalar(value) -> ScalarNode:
    if type(value) is not str:
        raise _Unrepresentable
    return ScalarNode(_STR_TAG, value)


def _str_sequence(values) -> SequenceNode:
    """A flow-style sequence of strings (scalar-only → flow, like dump)."""
    return SequenceNode(
        _SEQ_TAG, [_str_scalar(value) for value in values], flow_style=True
    )


def _end_mapping(end) -> MappingNode:
    """One link end as ``{node, label, load}`` (scalar-only → flow)."""
    return MappingNode(
        _MAP_TAG,
        [
            (ScalarNode(_STR_TAG, "node"), _str_scalar(end.node)),
            (ScalarNode(_STR_TAG, "label"), _str_scalar(end.label)),
            (ScalarNode(_STR_TAG, "load"), _number_scalar(end.load)),
        ],
        flow_style=True,
    )


def snapshot_to_yaml(snapshot: MapSnapshot) -> str:
    """Serialise one snapshot to YAML text.

    Builds the representation node tree directly instead of going through
    ``yaml.dump``'s representer dispatch — the document shape is fixed, so
    the generic per-object type lookups are pure overhead in bulk runs.
    The output is byte-identical to::

        yaml.dump(snapshot_to_document(snapshot), Dumper=_DUMPER,
                  sort_keys=False, default_flow_style=None, width=120)

    (flow style for scalar-only collections, block style elsewhere, the
    SafeRepresenter float format), which the test suite asserts over
    rendered and randomised snapshots.  Every node object is fresh: the
    serializer would otherwise emit anchors/aliases for reused nodes.
    """
    get_registry().counter(
        "repro_yaml_docs_total", "YAML documents by operation"
    ).inc(1, op="serialize")
    links_node = SequenceNode(
        _SEQ_TAG,
        [
            MappingNode(
                _MAP_TAG,
                [
                    (ScalarNode(_STR_TAG, "a"), _end_mapping(link.a)),
                    (ScalarNode(_STR_TAG, "b"), _end_mapping(link.b)),
                ],
                flow_style=False,
            )
            for link in snapshot.links
        ],
        # An empty links list has no non-scalar child, so dump would pick
        # flow style ([]); mirror that.
        flow_style=not snapshot.links,
    )
    root = MappingNode(
        _MAP_TAG,
        [
            (
                ScalarNode(_STR_TAG, "map"),
                ScalarNode(_STR_TAG, snapshot.map_name.value),
            ),
            (
                ScalarNode(_STR_TAG, "timestamp"),
                ScalarNode(_STR_TAG, snapshot.timestamp.isoformat()),
            ),
            (
                ScalarNode(_STR_TAG, "routers"),
                _str_sequence(sorted(node.name for node in snapshot.routers)),
            ),
            (
                ScalarNode(_STR_TAG, "peerings"),
                _str_sequence(sorted(node.name for node in snapshot.peerings)),
            ),
            (ScalarNode(_STR_TAG, "links"), links_node),
        ],
        flow_style=False,
    )
    return yaml.serialize(root, Dumper=_DUMPER, width=120)


def write_snapshot(snapshot: MapSnapshot, path: str | Path) -> int:
    """Write one snapshot to a YAML file; returns the byte count."""
    text = snapshot_to_yaml(snapshot)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = text.encode("utf-8")
    path.write_bytes(data)
    return len(data)
