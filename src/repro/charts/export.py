"""CSV export of chart series."""

from __future__ import annotations

import csv
import io
from pathlib import Path


def series_to_csv(columns: dict[str, list], path: str | Path | None = None) -> str:
    """Write named columns as CSV; returns the text, optionally saving it.

    Columns may have unequal lengths; short ones pad with empty cells.
    """
    names = list(columns)
    length = max((len(values) for values in columns.values()), default=0)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(names)
    for index in range(length):
        writer.writerow(
            [
                columns[name][index] if index < len(columns[name]) else ""
                for name in names
            ]
        )
    text = buffer.getvalue()
    if path is not None:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    return text
