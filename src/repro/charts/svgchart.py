"""A small SVG chart writer: line, step, and percentile-band charts.

Just enough of a plotting library to regenerate the paper's figures as
standalone SVG files — axes with ticks, multiple series, a legend, and a
shaded percentile band (for Figure 5a).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from xml.sax.saxutils import escape

from repro.errors import ReproError

#: Default categorical palette (colour-blind safe-ish).
PALETTE = ("#3b6fb6", "#d1495b", "#5f9e6e", "#8d6fb8", "#c77f3d", "#57767d")


@dataclass(frozen=True, slots=True)
class Series:
    """One polyline series."""

    name: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]
    color: str | None = None

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ReproError(f"series {self.name!r}: x/y length mismatch")


@dataclass(frozen=True, slots=True)
class StepSeries(Series):
    """A series drawn as horizontal steps (CDFs, count evolutions)."""


@dataclass(frozen=True, slots=True)
class BandSeries:
    """A shaded band between two percentile curves (Figure 5a style)."""

    name: str
    xs: tuple[float, ...]
    lows: tuple[float, ...]
    highs: tuple[float, ...]
    color: str = "#5f9e6e"
    opacity: float = 0.35

    def __post_init__(self) -> None:
        if not (len(self.xs) == len(self.lows) == len(self.highs)):
            raise ReproError(f"band {self.name!r}: length mismatch")


def _nice_ticks(low: float, high: float, count: int = 6) -> list[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        high = low + 1.0
    raw_step = (high - low) / max(1, count - 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiplier in (1, 2, 2.5, 5, 10):
        step = magnitude * multiplier
        if step >= raw_step:
            break
    first = math.floor(low / step) * step
    ticks = []
    value = first
    while value <= high + step / 2:
        if value >= low - step / 2:
            ticks.append(round(value, 10))
        value += step
    return ticks


@dataclass
class ChartRenderer:
    """Accumulates series and renders one SVG chart."""

    title: str
    x_label: str = ""
    y_label: str = ""
    width: float = 640.0
    height: float = 400.0
    x_log: bool = False
    series: list[Series] = field(default_factory=list)
    bands: list[BandSeries] = field(default_factory=list)

    _MARGIN_LEFT = 62.0
    _MARGIN_RIGHT = 18.0
    _MARGIN_TOP = 40.0
    _MARGIN_BOTTOM = 52.0

    def add_series(self, series: Series) -> None:
        """Add one line/step series."""
        self.series.append(series)

    def add_band(self, band: BandSeries) -> None:
        """Add one shaded band (drawn under the lines)."""
        self.bands.append(band)

    # ------------------------------------------------------------------

    def _bounds(self) -> tuple[float, float, float, float]:
        xs: list[float] = []
        ys: list[float] = []
        for series in self.series:
            xs.extend(series.xs)
            ys.extend(series.ys)
        for band in self.bands:
            xs.extend(band.xs)
            ys.extend(band.lows)
            ys.extend(band.highs)
        if not xs:
            raise ReproError("chart has no data")
        x_low, x_high = min(xs), max(xs)
        y_low, y_high = min(ys), max(ys)
        if self.x_log:
            x_low = max(x_low, 1e-9)
        if x_high == x_low:
            x_high = x_low + 1.0
        if y_high == y_low:
            y_high = y_low + 1.0
        pad = (y_high - y_low) * 0.05
        return x_low, x_high, y_low - pad, y_high + pad

    def _x_pixel(self, x: float, x_low: float, x_high: float) -> float:
        plot_width = self.width - self._MARGIN_LEFT - self._MARGIN_RIGHT
        if self.x_log:
            x = max(x, 1e-9)
            ratio = (math.log10(x) - math.log10(x_low)) / (
                math.log10(x_high) - math.log10(x_low)
            )
        else:
            ratio = (x - x_low) / (x_high - x_low)
        return self._MARGIN_LEFT + ratio * plot_width

    def _y_pixel(self, y: float, y_low: float, y_high: float) -> float:
        plot_height = self.height - self._MARGIN_TOP - self._MARGIN_BOTTOM
        ratio = (y - y_low) / (y_high - y_low)
        return self.height - self._MARGIN_BOTTOM - ratio * plot_height

    def _polyline(self, series: Series, bounds, color: str) -> str:
        x_low, x_high, y_low, y_high = bounds
        points: list[str] = []
        previous_y: float | None = None
        for x, y in zip(series.xs, series.ys):
            px = self._x_pixel(x, x_low, x_high)
            py = self._y_pixel(y, y_low, y_high)
            if isinstance(series, StepSeries) and previous_y is not None:
                points.append(f"{px:.1f},{previous_y:.1f}")
            points.append(f"{px:.1f},{py:.1f}")
            previous_y = py
        return (
            f'<polyline fill="none" stroke="{color}" stroke-width="1.6" '
            f'points="{" ".join(points)}"/>'
        )

    def _band_path(self, band: BandSeries, bounds) -> str:
        x_low, x_high, y_low, y_high = bounds
        forward = [
            f"{self._x_pixel(x, x_low, x_high):.1f},{self._y_pixel(high, y_low, y_high):.1f}"
            for x, high in zip(band.xs, band.highs)
        ]
        backward = [
            f"{self._x_pixel(x, x_low, x_high):.1f},{self._y_pixel(low, y_low, y_high):.1f}"
            for x, low in zip(reversed(band.xs), reversed(band.lows))
        ]
        return (
            f'<polygon fill="{band.color}" fill-opacity="{band.opacity}" '
            f'stroke="none" points="{" ".join(forward + backward)}"/>'
        )

    def to_svg(self) -> str:
        """Render the chart to an SVG document string."""
        bounds = self._bounds()
        x_low, x_high, y_low, y_high = bounds
        parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width:.0f}" '
            f'height="{self.height:.0f}" font-family="sans-serif">',
            f'<rect x="0" y="0" width="{self.width:.0f}" height="{self.height:.0f}" fill="#ffffff"/>',
            f'<text x="{self.width / 2:.0f}" y="22" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{escape(self.title)}</text>',
        ]

        # Axes frame.
        left = self._MARGIN_LEFT
        right = self.width - self._MARGIN_RIGHT
        top = self._MARGIN_TOP
        bottom = self.height - self._MARGIN_BOTTOM
        parts.append(
            f'<rect x="{left:.0f}" y="{top:.0f}" width="{right - left:.0f}" '
            f'height="{bottom - top:.0f}" fill="none" stroke="#888888"/>'
        )

        # Ticks and grid.
        if self.x_log:
            decade_low = math.floor(math.log10(max(x_low, 1e-9)))
            decade_high = math.ceil(math.log10(x_high))
            x_ticks = [10.0**d for d in range(int(decade_low), int(decade_high) + 1)]
        else:
            x_ticks = _nice_ticks(x_low, x_high)
        for tick in x_ticks:
            if not x_low <= tick <= x_high:
                continue
            px = self._x_pixel(tick, x_low, x_high)
            parts.append(
                f'<line x1="{px:.1f}" y1="{top:.0f}" x2="{px:.1f}" y2="{bottom:.0f}" '
                f'stroke="#dddddd"/>'
            )
            label = f"{tick:g}"
            parts.append(
                f'<text x="{px:.1f}" y="{bottom + 16:.0f}" text-anchor="middle" '
                f'font-size="10">{label}</text>'
            )
        for tick in _nice_ticks(y_low, y_high):
            if not y_low <= tick <= y_high:
                continue
            py = self._y_pixel(tick, y_low, y_high)
            parts.append(
                f'<line x1="{left:.0f}" y1="{py:.1f}" x2="{right:.0f}" y2="{py:.1f}" '
                f'stroke="#dddddd"/>'
            )
            parts.append(
                f'<text x="{left - 6:.0f}" y="{py + 3:.1f}" text-anchor="end" '
                f'font-size="10">{tick:g}</text>'
            )

        # Axis labels.
        if self.x_label:
            parts.append(
                f'<text x="{(left + right) / 2:.0f}" y="{self.height - 12:.0f}" '
                f'text-anchor="middle" font-size="11">{escape(self.x_label)}</text>'
            )
        if self.y_label:
            parts.append(
                f'<text x="16" y="{(top + bottom) / 2:.0f}" text-anchor="middle" '
                f'font-size="11" transform="rotate(-90 16 {(top + bottom) / 2:.0f})">'
                f"{escape(self.y_label)}</text>"
            )

        # Bands under lines.
        for band in self.bands:
            parts.append(self._band_path(band, bounds))

        # Series and legend.
        legend_y = top + 14
        for index, series in enumerate(self.series):
            color = series.color or PALETTE[index % len(PALETTE)]
            parts.append(self._polyline(series, bounds, color))
            parts.append(
                f'<line x1="{right - 150:.0f}" y1="{legend_y:.0f}" '
                f'x2="{right - 130:.0f}" y2="{legend_y:.0f}" stroke="{color}" '
                f'stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{right - 124:.0f}" y="{legend_y + 3:.0f}" font-size="10">'
                f"{escape(series.name)}</text>"
            )
            legend_y += 14

        parts.append("</svg>")
        return "\n".join(parts)

    def write(self, path) -> None:
        """Write the chart SVG to a file."""
        from pathlib import Path

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_svg(), encoding="utf-8")
