"""Horizontal segment (Gantt-style) charts — the Figure 2 form.

Figure 2 draws one row per map with bars covering the collected time
frames.  This renderer produces that: labelled rows, time on the x axis,
one bar per segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from xml.sax.saxutils import escape

from repro.errors import ReproError

_PALETTE = ("#3b6fb6", "#d1495b", "#5f9e6e", "#8d6fb8", "#c77f3d")


@dataclass(frozen=True, slots=True)
class GanttRow:
    """One labelled row of time segments."""

    label: str
    segments: tuple[tuple[datetime, datetime], ...]

    def __post_init__(self) -> None:
        for start, end in self.segments:
            if end <= start:
                raise ReproError(f"empty segment in row {self.label!r}")


@dataclass
class GanttChart:
    """Accumulates rows and renders the segment chart as SVG."""

    title: str
    width: float = 760.0
    row_height: float = 34.0
    rows: list[GanttRow] = field(default_factory=list)

    _MARGIN_LEFT = 120.0
    _MARGIN_RIGHT = 24.0
    _MARGIN_TOP = 44.0
    _MARGIN_BOTTOM = 40.0

    def add_row(self, label: str, segments) -> None:
        """Add one row; segments are (start, end) datetime pairs."""
        self.rows.append(GanttRow(label=label, segments=tuple(segments)))

    def _bounds(self) -> tuple[float, float]:
        stamps = [
            moment.timestamp()
            for row in self.rows
            for segment in row.segments
            for moment in segment
        ]
        if not stamps:
            raise ReproError("gantt chart has no segments")
        low, high = min(stamps), max(stamps)
        if high == low:
            high = low + 1
        return low, high

    def to_svg(self) -> str:
        """Render the chart."""
        low, high = self._bounds()
        height = (
            self._MARGIN_TOP + self._MARGIN_BOTTOM + self.row_height * len(self.rows)
        )
        plot_width = self.width - self._MARGIN_LEFT - self._MARGIN_RIGHT

        def x_of(moment: datetime) -> float:
            ratio = (moment.timestamp() - low) / (high - low)
            return self._MARGIN_LEFT + ratio * plot_width

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width:.0f}" '
            f'height="{height:.0f}" font-family="sans-serif">',
            f'<rect width="{self.width:.0f}" height="{height:.0f}" fill="#ffffff"/>',
            f'<text x="{self.width / 2:.0f}" y="24" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{escape(self.title)}</text>',
        ]

        # Year boundaries as gridlines.
        first_year = datetime.fromtimestamp(low).year
        last_year = datetime.fromtimestamp(high).year + 1
        for year in range(first_year, last_year + 1):
            moment = datetime(year, 1, 1)
            if not low <= moment.timestamp() <= high:
                continue
            x = x_of(moment)
            parts.append(
                f'<line x1="{x:.1f}" y1="{self._MARGIN_TOP:.0f}" x2="{x:.1f}" '
                f'y2="{height - self._MARGIN_BOTTOM:.0f}" stroke="#dddddd"/>'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{height - 16:.0f}" text-anchor="middle" '
                f'font-size="10">{year}</text>'
            )

        for index, row in enumerate(self.rows):
            y = self._MARGIN_TOP + index * self.row_height
            color = _PALETTE[index % len(_PALETTE)]
            parts.append(
                f'<text x="{self._MARGIN_LEFT - 8:.0f}" '
                f'y="{y + self.row_height / 2 + 4:.1f}" text-anchor="end" '
                f'font-size="11">{escape(row.label)}</text>'
            )
            for start, end in row.segments:
                x0 = x_of(start)
                x1 = max(x_of(end), x0 + 1.5)
                parts.append(
                    f'<rect x="{x0:.1f}" y="{y + 7:.1f}" '
                    f'width="{x1 - x0:.1f}" height="{self.row_height - 14:.1f}" '
                    f'rx="3" fill="{color}"/>'
                )
        parts.append("</svg>")
        return "\n".join(parts)

    def write(self, path: str | Path) -> None:
        """Write the chart SVG to a file."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_svg(), encoding="utf-8")
