"""Chart rendering without matplotlib.

The paper's figures are regenerated as standalone SVG charts (via our own
small chart writer) plus CSV series and quick ASCII previews for the
terminal — the benchmark harness prints the ASCII form and writes the SVG
and CSV forms next to its output.
"""

from repro.charts.svgchart import BandSeries, ChartRenderer, Series, StepSeries
from repro.charts.gantt import GanttChart, GanttRow
from repro.charts.ascii import ascii_plot, sparkline
from repro.charts.export import series_to_csv

__all__ = [
    "BandSeries",
    "ChartRenderer",
    "Series",
    "StepSeries",
    "GanttChart",
    "GanttRow",
    "ascii_plot",
    "sparkline",
    "series_to_csv",
]
