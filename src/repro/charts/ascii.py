"""Terminal previews: sparklines and small ASCII plots.

The benchmark harness prints the paper's series directly to the console;
these helpers make the shape visible without leaving the terminal.
"""

from __future__ import annotations

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 60) -> str:
    """One-line block-character rendering of a numeric series."""
    data = [float(v) for v in values]
    if not data:
        return ""
    if len(data) > width:
        # Downsample by averaging fixed-size buckets.
        bucket = len(data) / width
        data = [
            sum(data[int(i * bucket):max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(data[int(i * bucket):max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    low = min(data)
    high = max(data)
    if high == low:
        return _BLOCKS[0] * len(data)
    scale = (len(_BLOCKS) - 1) / (high - low)
    return "".join(_BLOCKS[int(round((v - low) * scale))] for v in data)


def ascii_plot(
    xs,
    ys,
    width: int = 64,
    height: int = 14,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """A small scatter/line plot rendered with text characters."""
    xs = [float(x) for x in xs]
    ys = [float(y) for y in ys]
    if not xs or len(xs) != len(ys):
        return "(no data)"
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1
    if y_high == y_low:
        y_high = y_low + 1
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = int((x - x_low) / (x_high - x_low) * (width - 1))
        row = height - 1 - int((y - y_low) / (y_high - y_low) * (height - 1))
        grid[row][column] = "*"
    lines = [f"{y_high:>10.4g} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 11 + "│" + "".join(row))
    lines.append(f"{y_low:>10.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 11 + "└" + "─" * width)
    footer = f"{x_low:<12.6g}{' ' * max(0, width - 24)}{x_high:>12.6g}"
    lines.append(" " * 12 + footer)
    if x_label or y_label:
        lines.append(f"            x: {x_label}   y: {y_label}")
    return "\n".join(lines)
