"""The weathermap publication surface."""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

from repro.constants import MapName, SNAPSHOT_INTERVAL
from repro.dataset.corruption import CorruptionInjector
from repro.errors import DatasetError
from repro.layout.renderer import MapRenderer
from repro.simulation.network import BackboneSimulator


def snapshot_tick(when: datetime) -> datetime:
    """Floor a wall-clock instant to the site's five-minute update grid."""
    utc = when.astimezone(timezone.utc)
    minutes = (utc.minute // 5) * 5
    return utc.replace(minute=minutes, second=0, microsecond=0)


class WeathermapWebsite:
    """Serves weathermap SVGs the way the real site publishes them.

    The site is stateless over the simulator: the document served "now"
    is the render of the snapshot at the latest five-minute tick, and the
    hourly archive contains today's on-the-hour renders.  Renders are
    cached per (map, tick), and the site occasionally publishes a
    malformed document (the paper's invalid SVGs exist server-side, so
    the corruption lives here, not in the crawler).
    """

    def __init__(
        self,
        simulator: BackboneSimulator,
        corruption: CorruptionInjector | None = None,
        cache_size: int = 64,
    ) -> None:
        self.simulator = simulator
        self.corruption = (
            corruption
            if corruption is not None
            else CorruptionInjector(seed=simulator.config.seed)
        )
        self._renderers: dict[MapName, MapRenderer] = {}
        self._cache: dict[tuple[MapName, datetime], str] = {}
        self._cache_size = cache_size

    def _renderer(self, map_name: MapName) -> MapRenderer:
        renderer = self._renderers.get(map_name)
        if renderer is None:
            evolution = self.simulator.evolution(map_name)

            def site_of(name: str, _evolution=evolution) -> str:
                try:
                    return _evolution.router_spec(name).site
                except KeyError:
                    return name.split("-", 1)[0]

            renderer = MapRenderer(site_of=site_of, seed=self.simulator.config.seed)
            self._renderers[map_name] = renderer
        return renderer

    def _render_tick(self, map_name: MapName, tick: datetime) -> str:
        cached = self._cache.get((map_name, tick))
        if cached is not None:
            return cached
        snapshot = self.simulator.snapshot(map_name, tick)
        svg = self._renderer(map_name).render(snapshot)
        svg, _ = self.corruption.maybe_corrupt(svg, map_name, tick)
        if len(self._cache) >= self._cache_size:
            self._cache.pop(next(iter(self._cache)))
        self._cache[(map_name, tick)] = svg
        return svg

    # ------------------------------------------------------------------
    # The public surface
    # ------------------------------------------------------------------

    def current(self, map_name: MapName, now: datetime) -> tuple[datetime, str]:
        """The map as published at wall-clock ``now``.

        Returns the tick the document corresponds to and the SVG text —
        polling twice within the same five-minute slot yields the same
        document, as on the real site.
        """
        tick = snapshot_tick(now)
        window = self.simulator.config
        if not window.window_start <= tick <= window.window_end:
            raise DatasetError(
                f"the site has no {map_name.value} map at {now.isoformat()}"
            )
        return tick, self._render_tick(map_name, tick)

    def hourly_archive(
        self, map_name: MapName, now: datetime
    ) -> list[tuple[datetime, str]]:
        """Today's past on-the-hour snapshots, oldest first.

        "The website only keeps past snapshots of the day at a granularity
        of one hour" — so the archive resets at midnight and never offers
        the current hour's in-progress slot.
        """
        utc = now.astimezone(timezone.utc)
        midnight = utc.replace(hour=0, minute=0, second=0, microsecond=0)
        window = self.simulator.config
        entries: list[tuple[datetime, str]] = []
        hour = midnight
        while hour + timedelta(hours=1) <= utc:
            if window.window_start <= hour <= window.window_end:
                entries.append((hour, self._render_tick(map_name, hour)))
            hour += timedelta(hours=1)
        return entries

    @property
    def update_interval(self) -> timedelta:
        """How often the site replaces each map."""
        return SNAPSHOT_INTERVAL
