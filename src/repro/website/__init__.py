"""The OVH Network Weathermap *website*, simulated.

Section 4 describes the acquisition target precisely: maps "are updated
every five minutes", "when a map is updated, the most recent snapshot is
replaced with the updated one", and "the website only keeps past snapshots
of the day at a granularity of one hour".  This package models that
publication surface and the paper's polling loop against it:

* :class:`~repro.website.site.WeathermapWebsite` — serves the current SVG
  of each map plus the same-day hourly archive, replacing content on the
  five-minute grid (with the occasional malformed document, as observed
  in the wild);
* :class:`~repro.website.webcollector.PollingCollector` — the wget-style
  crawler: polls every five minutes, suffers the pre-May-2022 operational
  issue, and can *backfill* missed ticks from the site's hourly archive —
  which is exactly why some of the dataset's gaps close at one-hour
  granularity.
"""

from repro.website.site import WeathermapWebsite
from repro.website.webcollector import PollingCollector, PollingStats

__all__ = ["WeathermapWebsite", "PollingCollector", "PollingStats"]
