"""The polling crawler: the paper's collection loop against the site."""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta

from repro.constants import MapName, SNAPSHOT_INTERVAL
from repro.dataset.gaps import AvailabilityModel
from repro.dataset.store import DatasetStore
from repro.website.site import WeathermapWebsite, snapshot_tick


@dataclass
class PollingStats:
    """What one polling campaign fetched."""

    polls: int = 0
    fetched: int = 0
    failed_polls: int = 0
    backfilled: int = 0
    duplicates_skipped: int = 0
    per_map: dict[MapName, int] = field(default_factory=dict)


class PollingCollector:
    """Polls the weathermap website every five minutes, like the authors.

    The availability model plays the role of the authors' crontab and its
    operational issue: a "failed poll" is a tick where the crawler did
    not run (machine asleep, cron misfire, network error), not a site
    outage.  When ``backfill`` is on, each successful poll also walks the
    site's same-day hourly archive and stores any on-the-hour snapshot a
    failed poll missed — which is why real gaps sometimes close at the
    one-hour granularity the site retains.
    """

    def __init__(
        self,
        site: WeathermapWebsite,
        store: DatasetStore,
        availability: AvailabilityModel | None = None,
        backfill: bool = True,
    ) -> None:
        self.site = site
        self.store = store
        self.availability = (
            availability
            if availability is not None
            else AvailabilityModel(seed=site.simulator.config.seed)
        )
        self.backfill = backfill

    def poll_once(
        self, map_name: MapName, now: datetime, stats: PollingStats
    ) -> bool:
        """One poll of one map; returns whether a document was stored."""
        stats.polls += 1
        if not self.availability.is_collected(map_name, now):
            stats.failed_polls += 1
            return False
        tick, svg = self.site.current(map_name, now)
        path = self.store.path_for(map_name, tick, "svg")
        if path.exists():
            stats.duplicates_skipped += 1
            stored = False
        else:
            self.store.write(map_name, tick, "svg", svg)
            stats.fetched += 1
            stats.per_map[map_name] = stats.per_map.get(map_name, 0) + 1
            stored = True
        if self.backfill:
            self._backfill(map_name, now, stats)
        return stored

    def _backfill(self, map_name: MapName, now: datetime, stats: PollingStats) -> None:
        """Recover missed on-the-hour snapshots from the site archive."""
        for hour, svg in self.site.hourly_archive(map_name, now):
            path = self.store.path_for(map_name, hour, "svg")
            if path.exists():
                continue
            self.store.write(map_name, hour, "svg", svg)
            stats.backfilled += 1
            stats.per_map[map_name] = stats.per_map.get(map_name, 0) + 1

    def run(
        self,
        start: datetime,
        end: datetime,
        maps: list[MapName] | None = None,
        interval: timedelta = SNAPSHOT_INTERVAL,
    ) -> PollingStats:
        """Poll every map on every tick of [start, end)."""
        stats = PollingStats()
        targets = maps if maps is not None else self.site.simulator.map_names
        current = snapshot_tick(start)
        while current < end:
            for map_name in targets:
                self.poll_once(map_name, current, stats)
            current += interval
        return stats
