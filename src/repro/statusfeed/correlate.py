"""Correlate weathermap structural changes with status-page entries.

The paper suggests augmenting the dataset with the provider's status
site: a router-count dip on the map that coincides with a published
maintenance window is *explained*; one that does not is a candidate
failure.  This module implements that join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import timedelta

from repro.analysis.infrastructure import StructuralEvent
from repro.statusfeed.feed import SyntheticStatusFeed
from repro.statusfeed.model import EventKind, StatusEvent


@dataclass(frozen=True, slots=True)
class ExplainedEvent:
    """A structural change matched (or not) with status entries."""

    change: StructuralEvent
    matches: tuple[StatusEvent, ...]

    @property
    def explained(self) -> bool:
        return bool(self.matches)


@dataclass
class CorrelationReport:
    """Outcome of correlating a change list against the status feed."""

    explained: list[ExplainedEvent] = field(default_factory=list)
    unexplained: list[ExplainedEvent] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.explained) + len(self.unexplained)

    @property
    def explained_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return len(self.explained) / self.total


def correlate_events(
    changes: list[StructuralEvent],
    feed: SyntheticStatusFeed,
    window: timedelta = timedelta(days=2),
    kinds: tuple[EventKind, ...] = (
        EventKind.PLANNED_MAINTENANCE,
        EventKind.CAPACITY_WORK,
        EventKind.INCIDENT,
    ),
) -> CorrelationReport:
    """Match each structural change with nearby status entries.

    Args:
        changes: detected map changes (from ``structural_events``).
        feed: the status page.
        window: slack allowed between the map change and the entry.
        kinds: status-entry kinds that can explain a structural change
            (routine notices never do).

    Returns:
        Report splitting changes into explained and unexplained.
    """
    report = CorrelationReport()
    for change in changes:
        matches = tuple(
            event
            for event in feed.events_between(
                change.start - window, change.end + window
            )
            if event.kind in kinds
        )
        item = ExplainedEvent(change=change, matches=matches)
        if item.explained:
            report.explained.append(item)
        else:
            report.unexplained.append(item)
    return report
