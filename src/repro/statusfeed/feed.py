"""Build the synthetic status feed from a simulator's scripted history."""

from __future__ import annotations

from datetime import datetime, timedelta

from repro.constants import MapName
from repro.rng import substream
from repro.simulation.evolution import FOREVER
from repro.simulation.network import BackboneSimulator
from repro.statusfeed.model import EventKind, StatusEvent


class SyntheticStatusFeed:
    """A provider status page consistent with the simulated backbone.

    Signal entries are derived from the simulator's actual history:

    * router outages → planned-maintenance windows on the affected sites,
    * router removals → decommission maintenance notices,
    * internal link-growth steps → capacity-work entries,
    * the scripted upgrade → a capacity-work entry at the peering.

    Noise entries (routine notices unrelated to any structural change)
    are drawn deterministically from the seed, roughly one per week.
    """

    def __init__(self, simulator: BackboneSimulator) -> None:
        self._events: list[StatusEvent] = []
        self._populate(simulator)
        self._events.sort(key=lambda event: event.start)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _populate(self, simulator: BackboneSimulator) -> None:
        for map_name in simulator.map_names:
            self._add_outage_events(simulator, map_name)
            self._add_removal_events(simulator, map_name)
            self._add_step_events(simulator, map_name)
        self._add_upgrade_event(simulator)
        self._add_routine_noise(simulator)

    def _add_outage_events(self, simulator: BackboneSimulator, map_name: MapName) -> None:
        evolution = simulator.evolution(map_name)
        windows: dict[tuple[datetime, datetime], list[str]] = {}
        for spec in evolution.all_routers:
            for window in spec.lifetime.outages:
                windows.setdefault(window, []).append(spec.site)
        for (start, end), sites in sorted(windows.items()):
            # The paper reads dips two ways: planned maintenance or
            # "failures forcing OVH to temporarily remove routers".  A
            # deterministic minority of outages report as incidents.
            rng = substream(
                "statusfeed-outage-kind",
                simulator.config.seed,
                map_name.value,
                start,
            )
            is_incident = rng.random() < 0.4
            kind = EventKind.INCIDENT if is_incident else EventKind.PLANNED_MAINTENANCE
            verb = "incident impacting" if is_incident else "maintenance on"
            self._events.append(
                StatusEvent(
                    kind=kind,
                    title=f"{map_name.title}: {verb} "
                    f"{len(sites)} routers ({', '.join(sorted(set(sites)))})",
                    start=start - timedelta(hours=2),
                    end=end + timedelta(hours=2),
                    sites=tuple(sorted(set(sites))),
                )
            )

    def _add_removal_events(self, simulator: BackboneSimulator, map_name: MapName) -> None:
        evolution = simulator.evolution(map_name)
        removals: dict[datetime, list[str]] = {}
        for spec in evolution.all_routers:
            if spec.lifetime.death != FOREVER:
                removals.setdefault(spec.lifetime.death, []).append(spec.site)
        for when, sites in sorted(removals.items()):
            self._events.append(
                StatusEvent(
                    kind=EventKind.PLANNED_MAINTENANCE,
                    title=f"{map_name.title}: decommissioning "
                    f"{len(sites)} routers",
                    start=when - timedelta(hours=6),
                    end=when + timedelta(hours=6),
                    sites=tuple(sorted(set(sites))),
                )
            )

    def _add_step_events(self, simulator: BackboneSimulator, map_name: MapName) -> None:
        profile = simulator.config.profile(map_name)
        if not profile.internal_step_dates:
            return
        for step in profile.internal_step_dates:
            self._events.append(
                StatusEvent(
                    kind=EventKind.CAPACITY_WORK,
                    title=f"{map_name.title}: backbone capacity augmentation",
                    start=step - timedelta(hours=12),
                    end=step + timedelta(hours=12),
                )
            )

    def _add_upgrade_event(self, simulator: BackboneSimulator) -> None:
        scenario = simulator.upgrade
        if scenario.map_name not in simulator.map_names:
            return
        self._events.append(
            StatusEvent(
                kind=EventKind.CAPACITY_WORK,
                title=f"new {scenario.per_link_capacity_gbps}G port towards "
                f"{scenario.peering}",
                start=scenario.added_at,
                end=scenario.activated_at,
            )
        )

    def _add_routine_noise(self, simulator: BackboneSimulator) -> None:
        config = simulator.config
        rng = substream("statusfeed-noise", config.seed)
        current = config.window_start
        while current < config.window_end:
            current += timedelta(days=rng.uniform(4.0, 10.0))
            if current >= config.window_end:
                break
            duration = timedelta(hours=rng.uniform(0.5, 4.0))
            self._events.append(
                StatusEvent(
                    kind=EventKind.ROUTINE_NOTICE,
                    title=rng.choice(
                        (
                            "DNS resolver maintenance",
                            "control-panel deployment",
                            "monitoring agent rollout",
                            "IPMI firmware campaign",
                            "out-of-band network checks",
                        )
                    ),
                    start=current,
                    end=current + duration,
                )
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def events(self) -> list[StatusEvent]:
        """Every entry, chronological."""
        return list(self._events)

    def events_between(self, start: datetime, end: datetime) -> list[StatusEvent]:
        """Entries overlapping the [start, end) window."""
        return [event for event in self._events if event.overlaps(start, end)]

    def events_near(self, when: datetime, window: timedelta = timedelta(days=1)) -> list[StatusEvent]:
        """Entries touching ``when`` within ``window`` slack."""
        return [event for event in self._events if event.near(when, window)]

    def structural_events(self) -> list[StatusEvent]:
        """Entries that announce structural network work (non-noise)."""
        return [
            event
            for event in self._events
            if event.kind is not EventKind.ROUTINE_NOTICE
        ]
