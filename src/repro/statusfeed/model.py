"""Status-page event records."""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from enum import Enum

from repro.errors import SchemaError


class EventKind(str, Enum):
    """Categories a provider status page typically distinguishes."""

    PLANNED_MAINTENANCE = "planned-maintenance"
    INCIDENT = "incident"
    CAPACITY_WORK = "capacity-work"
    ROUTINE_NOTICE = "routine-notice"


@dataclass(frozen=True, slots=True)
class StatusEvent:
    """One entry on the status page."""

    kind: EventKind
    title: str
    start: datetime
    end: datetime
    #: Site codes the entry mentions (empty for network-wide notices).
    sites: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SchemaError("status event ends before it starts")
        if not self.title:
            raise SchemaError("status event needs a title")

    @property
    def duration(self) -> timedelta:
        return self.end - self.start

    def overlaps(self, start: datetime, end: datetime) -> bool:
        """Whether the event intersects the [start, end) window."""
        return self.start < end and start < self.end

    def near(self, when: datetime, window: timedelta) -> bool:
        """Whether the event touches ``when`` within ``window`` slack."""
        return self.overlaps(when - window, when + window)
