"""Synthetic provider status page.

The paper's discussion section points at OVH's public status site
("planned maintenance events and the failures happening in their network")
as a source that "could give insights on the purpose of some modifications
of their network".  This package builds the closest synthetic equivalent:
a timestamped event feed consistent with the simulator's scripted history
— maintenance windows matching router outages, decommission notices
matching removals, capacity-work notices matching internal link steps —
mixed with unrelated routine notices, so correlation analyses have both
signal and noise to work against.
"""

from repro.statusfeed.model import EventKind, StatusEvent
from repro.statusfeed.feed import SyntheticStatusFeed
from repro.statusfeed.correlate import CorrelationReport, correlate_events

__all__ = [
    "EventKind",
    "StatusEvent",
    "SyntheticStatusFeed",
    "CorrelationReport",
    "correlate_events",
]
