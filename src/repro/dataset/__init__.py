"""The OVH Weather dataset substrate: collection, storage, cataloguing.

The paper's dataset is a directory tree of timestamped SVG snapshots (one
per map every five minutes) and their processed YAML counterparts.  This
package provides:

* :mod:`repro.dataset.store` — the on-disk layout and snapshot naming,
* :mod:`repro.dataset.gaps` — the availability model behind Figures 2/3
  (per-map collection segments, short gaps, the May 2022 collector fix),
* :mod:`repro.dataset.corruption` — injection of the malformed files the
  paper observed in the wild,
* :mod:`repro.dataset.collector` — the simulated collection campaign,
* :mod:`repro.dataset.processor` — bulk SVG→YAML processing with the
  paper's unprocessable-file accounting,
* :mod:`repro.dataset.engine` — the parallel + incremental bulk engine
  (process-pool fan-out and the per-map ``manifest.json`` skip cache),
* :mod:`repro.dataset.index` — the columnar snapshot index each map's
  YAML series is compacted into, so analyses never re-parse the corpus,
* :mod:`repro.dataset.query` — the zero-copy ``mmap`` query engine over
  that index: predicate-pushdown scans with no object materialisation,
* :mod:`repro.dataset.handles` — layout-agnostic read handles: one place
  that picks flat vs sharded engines and names index generations,
* :mod:`repro.dataset.workers` — worker-count resolution shared by every
  pool user (skips the pool where it cannot win),
* :mod:`repro.dataset.catalog` — index of what was collected (time frames,
  inter-snapshot distances),
* :mod:`repro.dataset.summary` — the Table 1 and Table 2 builders.
"""

from repro.dataset.store import DatasetStore, SnapshotRef
from repro.dataset.gaps import AvailabilityModel, CollectionSegment
from repro.dataset.corruption import CorruptionInjector
from repro.dataset.collector import CollectionStats, SimulatedCollector
from repro.dataset.processor import ProcessingStats, process_map, process_svg_bytes
from repro.dataset.engine import (
    Manifest,
    process_all_parallel,
    process_map_parallel,
)
from repro.dataset.index import (
    IndexBuildStats,
    IndexStatus,
    SnapshotIndex,
    build_index,
    fresh_index,
    index_status,
    load_index,
)
from repro.dataset.handles import ReadHandle, read_generation, resolve_read_handle
from repro.dataset.query import (
    ColumnBatch,
    LinkRecord,
    MappedIndex,
    ScanPredicate,
    ScanResult,
    open_query,
)
from repro.dataset.workers import default_workers, resolve_workers
from repro.dataset.catalog import DatasetCatalog, TimeFrame, time_frames_from
from repro.dataset.loader import iter_snapshots, latest_snapshot, load_all
from repro.dataset.validate import ValidationReport, validate_dataset, validate_map
from repro.dataset.summary import (
    Table1Row,
    Table2Row,
    build_table1,
    build_table2,
    format_table1,
    format_table2,
)

__all__ = [
    "DatasetStore",
    "SnapshotRef",
    "AvailabilityModel",
    "CollectionSegment",
    "CorruptionInjector",
    "CollectionStats",
    "SimulatedCollector",
    "ProcessingStats",
    "process_map",
    "process_svg_bytes",
    "Manifest",
    "process_all_parallel",
    "process_map_parallel",
    "IndexBuildStats",
    "IndexStatus",
    "SnapshotIndex",
    "build_index",
    "fresh_index",
    "index_status",
    "load_index",
    "ColumnBatch",
    "LinkRecord",
    "MappedIndex",
    "ReadHandle",
    "ScanPredicate",
    "ScanResult",
    "open_query",
    "read_generation",
    "resolve_read_handle",
    "default_workers",
    "resolve_workers",
    "DatasetCatalog",
    "TimeFrame",
    "time_frames_from",
    "iter_snapshots",
    "latest_snapshot",
    "load_all",
    "ValidationReport",
    "validate_dataset",
    "validate_map",
    "Table1Row",
    "Table2Row",
    "build_table1",
    "build_table2",
    "format_table1",
    "format_table2",
]
