"""Layout-agnostic read handles over a map's columnar indexes.

Every consumer that wants "the queryable form of this map" used to make
the flat-vs-sharded decision itself: the CLI ``query`` dispatch switched
on ``isinstance(store, ShardedDatasetStore)``, and the HTTP serving
layer would have had to repeat the same dance.  This module owns that
dispatch once:

* :func:`resolve_read_handle` — open the right engine for the store's
  layout (:class:`~repro.dataset.query.MappedIndex` for a flat store,
  :class:`~repro.dataset.shards.ShardedMappedIndex` for a sharded one),
  with the same ``None``-on-staleness contract both openers share.
* :func:`read_generation` — a stat-cheap token that changes whenever
  the map's serving index changes on disk.  For a flat store that is
  the ``index.bin`` identity (PR 6's generation pinning); for a sharded
  store it is the shard *manifest* identity, which compaction rewrites
  atomically whenever any shard index changes.  Long-lived readers (the
  HTTP server's engine cache) pin one generation per handle and compare
  tokens per request to know when to hot-swap.
"""

from __future__ import annotations

from typing import Union

from repro.constants import MapName
from repro.dataset.query import MappedIndex, open_query
from repro.dataset.shards import ShardedMappedIndex, open_sharded_query
from repro.dataset.store import DatasetStore, ShardedDatasetStore

__all__ = [
    "ReadHandle",
    "read_generation",
    "resolve_read_handle",
]

#: Either layout's query engine; both expose ``scan`` / ``close`` /
#: ``check_generation`` and the context-manager protocol.
ReadHandle = Union[MappedIndex, ShardedMappedIndex]

#: ``(layout, st_ino, st_size, st_mtime_ns)`` of the file that pins a
#: map's serving generation.
GenerationToken = tuple[str, int, int, int]


def resolve_read_handle(
    store: DatasetStore,
    map_name: MapName,
    *,
    backend: str = "auto",
    use_mmap: bool = True,
    require_fresh: bool = True,
) -> ReadHandle | None:
    """Open one map's query engine with the store's own layout.

    The single place flat-vs-sharded detection lives on the read path:
    a :class:`~repro.dataset.store.ShardedDatasetStore` gets
    :func:`~repro.dataset.shards.open_sharded_query`, anything else gets
    :func:`~repro.dataset.query.open_query`.  Both return ``None``
    rather than an engine that could serve stale or corrupt data, and a
    non-persistent store (the in-memory test backend) has no index files
    to map at all, so it also reports ``None``.
    """
    if not store.persistent:
        return None
    if isinstance(store, ShardedDatasetStore):
        return open_sharded_query(
            store,
            map_name,
            backend=backend,
            use_mmap=use_mmap,
            require_fresh=require_fresh,
        )
    return open_query(
        store,
        map_name,
        backend=backend,
        use_mmap=use_mmap,
        require_fresh=require_fresh,
    )


def read_generation(
    store: DatasetStore, map_name: MapName
) -> GenerationToken | None:
    """A stat-cheap token naming the map's current serving generation.

    Flat stores key on ``index.bin`` (the same ``(ino, size, mtime_ns)``
    identity :attr:`MappedIndex.generation` pins); sharded stores key on
    ``shards/manifest.json``, which :func:`compact_map_shards` rewrites
    atomically whenever any shard index is built or removed — so one
    ``stat()`` answers "did anything I serve change?" without touching a
    single shard.  ``None`` means the map has no built index yet (or the
    store keeps none on disk).
    """
    if not store.persistent:
        return None
    if isinstance(store, ShardedDatasetStore):
        layout, path = "sharded", store.shards_manifest_path(map_name)
    else:
        layout, path = "flat", store.index_path(map_name)
    try:
        stat = path.stat()
    except OSError:
        return None
    return (layout, stat.st_ino, stat.st_size, stat.st_mtime_ns)
