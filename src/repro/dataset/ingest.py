"""Long-lived ingestion: bounded queues, a write-ahead journal, crash-safe resume.

The paper's archive was collected continuously for 26 months by a
five-minute crontab; anything that long-lived *will* be interrupted —
reboots, OOM kills, power loss — and the CAIDA longitudinal-collection
line of work is blunt about why that matters: the asset is the unbroken
series, so recovery must resume exactly, not approximately.  This module
turns the one-shot processing engine into a daemon with three guarantees:

* **Bounded memory** — producer/consumer queues with hard capacity
  bounds; enumeration blocks when parsing falls behind and parsing
  blocks when writing falls behind, so peak RSS is flat in corpus size.

* **Crash-safe resume** — every ingested file is recorded in an
  append-only write-ahead journal (one CRC-32-framed JSON line per
  file), and the journal is fsync'd *after* the YAML files it describes,
  so a journal record on disk implies its YAML is durable.  Checkpoints
  fold the journal into the engine's ``manifest.json`` (atomically,
  fsync'd) and truncate it.  After a SIGKILL, recovery replays the
  journal tail into the manifest and re-ingests only files neither knew
  about — no re-parse of journaled work, no duplicate rows, and because
  parsing is deterministic the resumed run's YAML tree is byte-identical
  to an uninterrupted one.

* **O(new shard) index maintenance** — on a
  :class:`~repro.dataset.store.ShardedDatasetStore`, checkpoints compact
  only the day-shards touched since the last checkpoint via
  :func:`~repro.dataset.shards.compact_map_shards`; the monolithic
  rebuild (or even its O(corpus) incremental rewrite) never runs.

Journal record format (one line, ``crc32-hex space json newline``)::

    5f3a9c01 {"failure":null,"map":"europe","mtime_ns":...,"sha256":"...",
              "size":126526,"stamp":"20220912T000000Z","yaml_bytes":14836}

A torn tail (the only damage a crash can produce on an append-only file)
is dropped silently; a bad record *followed by a good one* means real
corruption and raises :class:`~repro.errors.JournalError`.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import queue
import threading
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter, time
from typing import BinaryIO, Sequence, TypeVar

from repro.constants import MapName
from repro.dataset.engine import Manifest, ManifestEntry, _skip_from_manifest
from repro.dataset.processor import (
    ProcessingStats,
    ProcessOutcome,
    file_metrics,
    process_svg_bytes,
)
from repro.dataset.store import (
    DatasetStore,
    ShardedDatasetStore,
    SnapshotRef,
    StorageBackend,
    atomic_write_text,
    format_timestamp,
    fsync_directory,
    shard_key,
)
from repro.errors import IngestError, JournalError
from repro.parsing.pipeline import ParseOptions
from repro.telemetry import get_registry

logger = logging.getLogger(__name__)

__all__ = [
    "IngestConfig",
    "IngestDaemon",
    "IngestJournal",
    "IngestStats",
    "JournalRecord",
    "read_ingest_status",
    "resume_ingest",
    "status_path",
]

STATUS_FILE_NAME = "ingest-status.json"


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One ingested file's durable fact: source stat, hash, outcome."""

    map_value: str
    stamp: str
    sha256: str
    size: int
    mtime_ns: int
    yaml_bytes: int | None = None
    failure: str | None = None

    def to_entry(self) -> ManifestEntry:
        """The manifest entry this record folds into at a checkpoint."""
        return ManifestEntry(
            sha256=self.sha256,
            size=self.size,
            mtime_ns=self.mtime_ns,
            yaml_bytes=self.yaml_bytes,
            failure=self.failure,
        )

    def to_json(self) -> str:
        """Canonical JSON payload (sorted keys — what the CRC covers)."""
        return json.dumps(
            {
                "failure": self.failure,
                "map": self.map_value,
                "mtime_ns": self.mtime_ns,
                "sha256": self.sha256,
                "size": self.size,
                "stamp": self.stamp,
                "yaml_bytes": self.yaml_bytes,
            },
            sort_keys=True,
        )

    @classmethod
    def from_payload(cls, payload: object) -> "JournalRecord":
        """Parse one decoded JSON payload; :class:`JournalError` on shape."""
        if not isinstance(payload, dict):
            raise JournalError("journal payload is not an object")
        try:
            yaml_bytes = payload["yaml_bytes"]
            failure = payload["failure"]
            return cls(
                map_value=str(payload["map"]),
                stamp=str(payload["stamp"]),
                sha256=str(payload["sha256"]),
                size=int(payload["size"]),
                mtime_ns=int(payload["mtime_ns"]),
                yaml_bytes=None if yaml_bytes is None else int(yaml_bytes),
                failure=None if failure is None else str(failure),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"journal payload malformed: {exc}") from exc


def _parse_journal_line(line: bytes) -> JournalRecord | None:
    """One framed line → record, or ``None`` if the frame is damaged."""
    if not line.endswith(b"\n"):
        return None  # torn write: the trailing newline never made it
    body = line[:-1]
    if len(body) < 10 or body[8:9] != b" ":
        return None
    crc_text, payload = body[:8], body[9:]
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(payload) != expected:
        return None
    try:
        return JournalRecord.from_payload(json.loads(payload))
    except (ValueError, JournalError):
        return None


class IngestJournal:
    """Append-only, CRC-framed, explicitly-fsync'd write-ahead journal.

    Appends buffer in the OS; callers decide when :meth:`sync` runs (the
    daemon fsyncs the YAML files a batch of records describes *first*,
    so every durable record points at durable data).  :meth:`clear`
    truncates after a checkpoint has folded the records somewhere safer.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._handle: BinaryIO | None = None
        self.appended = 0

    def append(self, record: JournalRecord) -> None:
        """Buffer one framed record at the journal's tail."""
        payload = record.to_json().encode("utf-8")
        line = b"%08x %s\n" % (zlib.crc32(payload), payload)
        if self._handle is None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "ab")
            except OSError as exc:
                raise JournalError(f"cannot open journal {self.path}: {exc}") from exc
        try:
            self._handle.write(line)
        except OSError as exc:
            raise JournalError(f"cannot append to journal {self.path}: {exc}") from exc
        self.appended += 1

    def sync(self) -> None:
        """Flush buffered records and fsync the journal file."""
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush and close the append handle (the file stays)."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    def clear(self) -> None:
        """Drop the journal after its records were checkpointed."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        fsync_directory(self.path.parent)

    def replay(self) -> tuple[list[JournalRecord], int]:
        """Read every sound record back; ``(records, dropped_lines)``.

        A damaged frame with only damaged (or no) frames after it is a
        torn tail and is silently dropped — that is what a crash leaves.

        Raises:
            JournalError: a damaged frame *followed by a sound one*,
                which an append-only crash cannot produce — the journal
                is corrupt, and dropping the middle of it would silently
                lose history.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return [], 0
        except OSError as exc:
            raise JournalError(f"cannot read journal {self.path}: {exc}") from exc
        records: list[JournalRecord] = []
        dropped = 0
        bad_seen = False
        for line in raw.splitlines(keepends=True):
            record = _parse_journal_line(line)
            if record is None:
                bad_seen = True
                dropped += 1
                continue
            if bad_seen:
                raise JournalError(
                    f"journal {self.path} has a sound record after a damaged "
                    f"one — mid-file corruption, not a torn tail"
                )
            records.append(record)
        return records, dropped


# ---------------------------------------------------------------------------
# Daemon configuration and accounting
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class IngestConfig:
    """Knobs of one ingestion run; validated eagerly.

    ``queue_size`` bounds *both* the work and the result queue, so at
    most ``2 × queue_size + workers`` files are in flight — the flat-RSS
    guarantee.  ``checkpoint_every`` paces manifest folds and shard
    compaction; ``fsync_every`` paces the YAML-then-journal durability
    batches inside a checkpoint interval.
    """

    queue_size: int = 256
    workers: int = 1
    checkpoint_every: int = 512
    fsync_every: int = 64
    max_files: int | None = None
    strict: bool = False
    update_index: bool = True
    options: ParseOptions | None = None

    def __post_init__(self) -> None:
        for name in ("queue_size", "workers", "checkpoint_every", "fsync_every"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise IngestError(f"{name} must be a positive integer, got {value!r}")
        if self.max_files is not None and (
            not isinstance(self.max_files, int) or self.max_files < 1
        ):
            raise IngestError(
                f"max_files must be a positive integer or None, got {self.max_files!r}"
            )


@dataclass
class IngestStats:
    """What one :class:`IngestDaemon` run (or resume) did."""

    processed: int = 0
    failed: int = 0
    skipped: int = 0
    replayed: int = 0
    dropped: int = 0
    checkpoints: int = 0
    recovery_seconds: float = 0.0
    run_seconds: float = 0.0
    per_map: dict[MapName, ProcessingStats] = field(default_factory=dict)

    @property
    def ingested(self) -> int:
        """Files actually read and parsed this run (not skipped)."""
        return self.processed + self.failed

    @property
    def sustained_fps(self) -> float:
        """Ingested files per second of total run wall time."""
        if self.run_seconds <= 0:
            return 0.0
        return self.ingested / self.run_seconds


def status_path(store: StorageBackend) -> Path:
    """Where the daemon's liveness/progress file lives."""
    return store.root / STATUS_FILE_NAME


def read_ingest_status(root: str | Path) -> dict[str, object] | None:
    """The last status the daemon published, or ``None`` if never/corrupt.

    The file is written atomically, so a reader sees either a complete
    status document or nothing — never a torn one.
    """
    try:
        raw = (Path(root) / STATUS_FILE_NAME).read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        payload = json.loads(raw)
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None


@dataclass(slots=True)
class _Processed:
    """One file's outcome crossing the worker → writer queue."""

    ref: SnapshotRef
    sha256: str
    size: int
    mtime_ns: int
    outcome: ProcessOutcome


_T = TypeVar("_T")

#: How long a blocked queue operation waits before re-checking the abort
#: flag: invisible under normal flow, prompt when the pipeline dies.
_QUEUE_POLL_SECONDS = 0.1


def _put_abortable(
    target: "queue.Queue[_T]", item: _T, abort: threading.Event
) -> bool:
    """A blocking put with an abort escape; ``False`` means aborted.

    The bounded queues are what keep memory flat, so producers *should*
    block when consumers fall behind — but a put with no timeout parks
    the thread even when every consumer is dead, which then wedges the
    executor's shutdown join behind it.  This is the sanctioned
    backpressure path: block in short slices, re-checking the abort
    flag between them.
    """
    while not abort.is_set():
        try:
            target.put(item, timeout=_QUEUE_POLL_SECONDS)
            return True
        except queue.Full:
            continue
    return False


# ---------------------------------------------------------------------------
# Daemon
# ---------------------------------------------------------------------------


class IngestDaemon:
    """The long-lived SVG→YAML ingestion pipeline over any storage backend.

    One writer (the calling thread) owns the manifest, the journal, and
    every YAML write; ``config.workers`` pool threads do the CPU work
    (read, hash, parse); one producer thread enumerates pending refs.
    All hand-offs go through bounded queues, so memory stays flat no
    matter how deep the backlog is.

    On a non-:attr:`~repro.dataset.store.StorageBackend.persistent`
    backend (the in-memory store) the daemon still ingests — same
    queues, same accounting — but keeps manifest state in memory only
    and skips the journal and the indexes, since there is no filesystem
    to make anything durable on.
    """

    def __init__(self, store: StorageBackend, config: IngestConfig | None = None) -> None:
        self.store = store
        self.config = config if config is not None else IngestConfig()
        self.stats = IngestStats()
        #: Filesystem-backed stores get the full journal/manifest/index
        #: treatment; the in-memory backend runs stateless.
        self.durable = bool(store.persistent) and isinstance(store, DatasetStore)
        self._started = 0.0
        self._recent_mark = (0.0, 0)  # (perf_counter, ingested) at last status
        self._queue_depth = 0
        self._maps: list[MapName] = []
        self._pending_total = 0

    # -- public entry points ------------------------------------------------

    def run(self, maps: Sequence[MapName] | None = None) -> IngestStats:
        """Recover, then ingest everything pending; returns the accounting.

        Safe to invoke on a dataset a previous run was SIGKILL'd out of:
        recovery replays the journal into the manifest first, so nothing
        already ingested is read, parsed, or written again.
        """
        registry = get_registry()
        run_span = registry.span(
            "repro_ingest_run", "Whole ingestion run wall time"
        )
        self._maps = list(maps) if maps is not None else list(MapName)
        self._started = perf_counter()
        self._recent_mark = (self._started, 0)
        self._write_status("starting")
        with run_span:
            for map_name in self._maps:
                self._ingest_map(map_name)
                if self._budget_left() == 0:
                    break
        self.stats.run_seconds = perf_counter() - self._started
        self._write_status("done")
        logger.info(
            "ingested %d files (%d failed, %d skipped, %d replayed) in %.1fs",
            self.stats.ingested,
            self.stats.failed,
            self.stats.skipped,
            self.stats.replayed,
            self.stats.run_seconds,
        )
        return self.stats

    # -- recovery -----------------------------------------------------------

    def _recover_map(self, map_name: MapName, journal: IngestJournal | None) -> Manifest:
        """Fold any journal tail into the manifest — the resume fast path."""
        registry = get_registry()
        journal_counter = registry.counter(
            "repro_ingest_journal_records_total",
            "Write-ahead journal records by event (appended, replayed, dropped)",
        )
        recover_seconds = registry.histogram(
            "repro_ingest_recover_seconds", "Crash-recovery wall time per map"
        )
        started = perf_counter()
        if not self.durable:
            return Manifest()
        manifest = Manifest.load(self.store.manifest_path(map_name))
        if journal is not None:
            records, dropped = journal.replay()
            for record in records:
                manifest.entries[record.stamp] = record.to_entry()
            if records:
                # The journal facts are durable; promote them before the
                # journal is truncated so a crash here loses nothing.
                manifest.save(self.store.manifest_path(map_name))
                journal.clear()
            self.stats.replayed += len(records)
            self.stats.dropped += dropped
            journal_counter.inc(len(records), map=map_name.value, event="replayed")
            journal_counter.inc(dropped, map=map_name.value, event="dropped")
            if records or dropped:
                logger.info(
                    "recovered %s: %d journal records replayed, %d torn dropped",
                    map_name.value,
                    len(records),
                    dropped,
                )
        elapsed = perf_counter() - started
        self.stats.recovery_seconds += elapsed
        recover_seconds.observe(elapsed, map=map_name.value)
        return manifest

    # -- the pipeline -------------------------------------------------------

    def _budget_left(self) -> int | None:
        """Files this run may still ingest, or ``None`` for unlimited."""
        if self.config.max_files is None:
            return None
        return max(0, self.config.max_files - self.stats.ingested)

    def _pending_refs(self, map_name: MapName, manifest: Manifest) -> list[SnapshotRef]:
        """SVG refs the manifest does not already account for, in time order."""
        files_counter, _, _ = file_metrics()
        ingest_files = get_registry().counter(
            "repro_ingest_files_total",
            "Ingestion daemon files by outcome (processed, failed, skipped)",
        )
        map_stats = self.stats.per_map.setdefault(
            map_name, ProcessingStats(map_name=map_name)
        )
        pending: list[SnapshotRef] = []
        for ref in self.store.iter_refs(map_name, "svg"):
            entry = manifest.entries.get(format_timestamp(ref.timestamp))
            if entry is not None:
                size, mtime_ns = ref.stat_key()
                if entry.size == size and entry.mtime_ns == mtime_ns:
                    _skip_from_manifest(map_stats, entry)
                    self.stats.skipped += 1
                    files_counter.inc(1, map=map_name.value, outcome="skipped")
                    ingest_files.inc(1, map=map_name.value, outcome="skipped")
                    continue
            pending.append(ref)
        budget = self._budget_left()
        if budget is not None and len(pending) > budget:
            pending = pending[:budget]
        return pending

    def _worker_loop(
        self,
        map_name: MapName,
        work: "queue.Queue[SnapshotRef | None]",
        results: "queue.Queue[_Processed | None]",
        abort: threading.Event,
    ) -> None:
        """Pool thread: read → hash → parse, until the ``None`` sentinel.

        Every blocking queue operation polls the abort flag so a dead
        writer (or sibling) unwinds the pipeline instead of deadlocking
        it.
        """
        while not abort.is_set():
            try:
                ref = work.get(timeout=_QUEUE_POLL_SECONDS)
            except queue.Empty:
                continue
            if ref is None:
                _put_abortable(results, None, abort)
                return
            data = self.store.read_ref(ref)
            size, mtime_ns = ref.stat_key()
            outcome = process_svg_bytes(
                data,
                map_name,
                ref.timestamp,
                strict=self.config.strict,
                options=self.config.options,
            )
            delivered = _put_abortable(
                results,
                _Processed(
                    ref=ref,
                    sha256=hashlib.sha256(data).hexdigest(),
                    size=size,
                    mtime_ns=mtime_ns,
                    outcome=outcome,
                ),
                abort,
            )
            if not delivered:
                return

    def _producer_loop(
        self,
        pending: Sequence[SnapshotRef],
        work: "queue.Queue[SnapshotRef | None]",
        abort: threading.Event,
    ) -> None:
        """Pool thread: feed refs into the bounded work queue, then sentinels.

        The put blocking when workers fall behind is the backpressure
        that keeps memory flat; the abort escape is what keeps it from
        becoming a permanent park when every worker has died.
        """
        for ref in pending:
            if not _put_abortable(work, ref, abort):
                return
        for _ in range(self.config.workers):
            if not _put_abortable(work, None, abort):
                return

    def _sync_batch(
        self, journal: IngestJournal | None, yaml_paths: list[Path]
    ) -> None:
        """Make a batch durable: YAML files first, then their journal records."""
        if not self.durable:
            yaml_paths.clear()
            return
        parents: set[Path] = set()
        for path in yaml_paths:
            try:
                fd = os.open(path, os.O_RDONLY)
            except OSError:
                continue
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
            parents.add(path.parent)
        for parent in parents:
            fsync_directory(parent)
        yaml_paths.clear()
        if journal is not None:
            journal.sync()

    def _checkpoint(
        self,
        map_name: MapName,
        manifest: Manifest,
        journal: IngestJournal | None,
        yaml_paths: list[Path],
        touched_shards: set[str],
        pending_left: int,
    ) -> None:
        """Fold the journal into the manifest and compact touched shards."""
        registry = get_registry()
        checkpoint_seconds = registry.histogram(
            "repro_ingest_checkpoint_seconds", "Checkpoint (fold + compact) wall time"
        )
        started = perf_counter()
        self._sync_batch(journal, yaml_paths)
        if self.durable:
            manifest.save(self.store.manifest_path(map_name))
            if journal is not None:
                journal.clear()
            if (
                self.config.update_index
                and touched_shards
                and isinstance(self.store, ShardedDatasetStore)
            ):
                from repro.dataset.shards import compact_map_shards

                compact_map_shards(
                    self.store,
                    map_name,
                    only=sorted(touched_shards),
                    on_error=lambda ref, exc: logger.warning(
                        "not indexing unreadable %s: %s", ref.path.name, exc
                    ),
                )
        touched_shards.clear()
        self.stats.checkpoints += 1
        checkpoint_seconds.observe(perf_counter() - started, map=map_name.value)
        self._write_status("running", pending_left=pending_left)

    def _ingest_map(self, map_name: MapName) -> None:
        """Recover one map, then drain its pending SVGs through the queues."""
        journal: IngestJournal | None = None
        if self.durable and isinstance(self.store, DatasetStore):
            journal = IngestJournal(self.store.journal_path(map_name))
        manifest = self._recover_map(map_name, journal)
        pending = self._pending_refs(map_name, manifest)
        self._pending_total += len(pending)
        map_stats = self.stats.per_map.setdefault(
            map_name, ProcessingStats(map_name=map_name)
        )
        if not pending:
            # Nothing new, but leave the indexes consistent with the tree.
            self._finish_map(map_name, manifest, journal, had_pending=False)
            return

        work: "queue.Queue[SnapshotRef | None]" = queue.Queue(self.config.queue_size)
        results: "queue.Queue[_Processed | None]" = queue.Queue(self.config.queue_size)
        yaml_batch: list[Path] = []
        touched_shards: set[str] = set()
        abort = threading.Event()
        with ThreadPoolExecutor(max_workers=self.config.workers + 1) as pool:
            try:
                futures: list[Future[None]] = [
                    pool.submit(self._producer_loop, pending, work, abort)
                ]
                for _ in range(self.config.workers):
                    futures.append(
                        pool.submit(self._worker_loop, map_name, work, results, abort)
                    )
                self._drain_results(
                    map_name,
                    manifest,
                    journal,
                    pending,
                    results,
                    work,
                    futures,
                    map_stats,
                    yaml_batch,
                    touched_shards,
                )
            except BaseException:
                # The writer died (or a pipeline thread's exception was
                # re-raised).  Trip the abort flag so every producer and
                # worker unwinds its blocking queue operation — otherwise
                # the executor's __exit__ join would park forever on a
                # thread stuck in put() with nobody left to drain it.
                abort.set()
                raise

        self._checkpoint(
            map_name, manifest, journal, yaml_batch, touched_shards, pending_left=0
        )
        self._finish_map(map_name, manifest, journal, had_pending=True)

    def _drain_results(
        self,
        map_name: MapName,
        manifest: Manifest,
        journal: IngestJournal | None,
        pending: Sequence[SnapshotRef],
        results: "queue.Queue[_Processed | None]",
        work: "queue.Queue[SnapshotRef | None]",
        futures: "list[Future[None]]",
        map_stats: ProcessingStats,
        yaml_batch: list[Path],
        touched_shards: set[str],
    ) -> None:
        """The writer loop: apply processed results until every worker ends."""
        registry = get_registry()
        _, _, yaml_bytes_counter = file_metrics()
        ingest_files = registry.counter(
            "repro_ingest_files_total",
            "Ingestion daemon files by outcome (processed, failed, skipped)",
        )
        journal_counter = registry.counter(
            "repro_ingest_journal_records_total",
            "Write-ahead journal records by event (appended, replayed, dropped)",
        )
        depth_gauge = registry.gauge(
            "repro_ingest_queue_depth", "Items waiting in the ingest work queue"
        )
        since_sync = 0
        since_checkpoint = 0
        done = 0
        finished_workers = 0
        while finished_workers < self.config.workers:
            try:
                item = results.get(timeout=1.0)
            except queue.Empty:
                self._raise_pipeline_failure(futures)
                continue
            if item is None:
                finished_workers += 1
                continue
            ref, outcome = item.ref, item.outcome
            entry = ManifestEntry(
                sha256=item.sha256, size=item.size, mtime_ns=item.mtime_ns
            )
            if outcome.yaml_text is None:
                entry.failure = outcome.failure_cause
                map_stats.unprocessed += 1
                map_stats.failure_causes[outcome.failure_cause] += 1
                self.stats.failed += 1
                ingest_files.inc(1, map=map_name.value, outcome="failed")
                logger.warning(
                    "unprocessable %s (%s: %s)",
                    ref.path.name,
                    outcome.failure_cause,
                    outcome.failure_message,
                )
            else:
                written = self.store.write(
                    map_name, ref.timestamp, "yaml", outcome.yaml_text
                )
                entry.yaml_bytes = written.size_bytes
                map_stats.processed += 1
                map_stats.yaml_bytes += written.size_bytes
                yaml_bytes_counter.inc(written.size_bytes, map=map_name.value)
                self.stats.processed += 1
                ingest_files.inc(1, map=map_name.value, outcome="processed")
                yaml_batch.append(written.path)
                touched_shards.add(shard_key(ref.timestamp))
            stamp = format_timestamp(ref.timestamp)
            manifest.entries[stamp] = entry
            if journal is not None:
                journal.append(
                    JournalRecord(
                        map_value=map_name.value,
                        stamp=stamp,
                        sha256=item.sha256,
                        size=item.size,
                        mtime_ns=item.mtime_ns,
                        yaml_bytes=entry.yaml_bytes,
                        failure=entry.failure,
                    )
                )
                journal_counter.inc(1, map=map_name.value, event="appended")
            done += 1
            since_sync += 1
            since_checkpoint += 1
            self._queue_depth = work.qsize()
            depth_gauge.set(self._queue_depth, map=map_name.value)
            if since_sync >= self.config.fsync_every:
                self._sync_batch(journal, yaml_batch)
                since_sync = 0
            if since_checkpoint >= self.config.checkpoint_every:
                self._checkpoint(
                    map_name,
                    manifest,
                    journal,
                    yaml_batch,
                    touched_shards,
                    pending_left=len(pending) - done,
                )
                since_checkpoint = 0
        self._raise_pipeline_failure(futures)

    def _raise_pipeline_failure(self, futures: Sequence["Future[None]"]) -> None:
        """Surface a dead producer/worker as a typed error instead of a hang."""
        for future in futures:
            if future.done():
                exc = future.exception()
                if exc is not None:
                    raise IngestError(f"ingest pipeline thread died: {exc}") from exc

    def _finish_map(
        self,
        map_name: MapName,
        manifest: Manifest,
        journal: IngestJournal | None,
        had_pending: bool,
    ) -> None:
        """Close the journal and leave this map's indexes fully compacted."""
        if journal is not None:
            journal.close()
        if not self.durable or not self.config.update_index:
            return
        if not any(True for _ in self.store.iter_refs(map_name, "yaml")):
            return
        if isinstance(self.store, ShardedDatasetStore):
            from repro.dataset.shards import compact_map_shards

            compact_map_shards(
                self.store,
                map_name,
                on_error=lambda ref, exc: logger.warning(
                    "not indexing unreadable %s: %s", ref.path.name, exc
                ),
            )
        elif had_pending:
            from repro.dataset.index import build_index

            build_index(
                self.store,
                map_name,
                on_error=lambda ref, exc: logger.warning(
                    "not indexing unreadable %s: %s", ref.path.name, exc
                ),
            )

    # -- status -------------------------------------------------------------

    def _write_status(self, state: str, pending_left: int | None = None) -> None:
        """Publish progress atomically; readers never see a torn file."""
        if not self.durable:
            return
        now = perf_counter()
        elapsed = max(now - self._started, 1e-9)
        recent_t, recent_n = self._recent_mark
        window = max(now - recent_t, 1e-9)
        recent_fps = (self.stats.ingested - recent_n) / window
        self._recent_mark = (now, self.stats.ingested)
        payload = {
            "state": state,
            "pid": os.getpid(),
            "maps": [map_name.value for map_name in self._maps],
            "processed": self.stats.processed,
            "failed": self.stats.failed,
            "skipped": self.stats.skipped,
            "replayed": self.stats.replayed,
            "checkpoints": self.stats.checkpoints,
            "pending_left": pending_left,
            "pending_total": self._pending_total,
            "queue_depth": self._queue_depth,
            "recovery_seconds": self.stats.recovery_seconds,
            "elapsed_seconds": elapsed,
            "overall_fps": self.stats.ingested / elapsed,
            "recent_fps": recent_fps,
            "updated_unix": time(),
        }
        atomic_write_text(
            status_path(self.store),
            json.dumps(payload, sort_keys=True),
            durable=False,
        )


def resume_ingest(
    store: StorageBackend,
    config: IngestConfig | None = None,
    maps: Sequence[MapName] | None = None,
) -> IngestStats:
    """Resume an interrupted ingestion run; refuses a dataset with no state.

    ``run()`` on a fresh :class:`IngestDaemon` already *is* the resume
    path — this wrapper just makes "there was nothing to resume" a typed
    error instead of silently starting from scratch, which is what the
    ``ingest resume`` CLI wants.
    """
    if not isinstance(store, DatasetStore) or not store.persistent:
        raise IngestError("resume needs a filesystem-backed dataset store")
    targets = list(maps) if maps is not None else list(MapName)
    has_state = any(
        store.manifest_path(map_name).exists() or store.journal_path(map_name).exists()
        for map_name in targets
    )
    if not has_state:
        raise IngestError(
            f"nothing to resume under {store.root}: no manifest and no journal"
        )
    return IngestDaemon(store, config).run(targets)
