"""The simulated collection campaign.

Drives the backbone simulator through a time window, rendering an SVG for
every tick the availability model says was collected, corrupting the rare
file, and writing everything into a :class:`DatasetStore` — a faithful,
scaled-down replay of the paper's two-year wget loop.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from datetime import datetime, timedelta

from repro.constants import MapName, SNAPSHOT_INTERVAL
from repro.dataset.corruption import CorruptionInjector
from repro.dataset.gaps import AvailabilityModel
from repro.dataset.store import DatasetStore
from repro.layout.renderer import MapRenderer
from repro.simulation.network import BackboneSimulator

logger = logging.getLogger(__name__)


@dataclass
class CollectionStats:
    """What one collection run wrote."""

    files_written: dict[MapName, int] = field(default_factory=dict)
    bytes_written: dict[MapName, int] = field(default_factory=dict)
    corrupted: dict[MapName, int] = field(default_factory=dict)
    ticks_skipped: dict[MapName, int] = field(default_factory=dict)

    @property
    def total_files(self) -> int:
        return sum(self.files_written.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_written.values())


class SimulatedCollector:
    """Collects weathermap snapshots from a simulator into a store."""

    def __init__(
        self,
        simulator: BackboneSimulator,
        store: DatasetStore,
        availability: AvailabilityModel | None = None,
        corruption: CorruptionInjector | None = None,
    ) -> None:
        self.simulator = simulator
        self.store = store
        self.availability = (
            availability
            if availability is not None
            else AvailabilityModel(seed=simulator.config.seed)
        )
        self.corruption = (
            corruption
            if corruption is not None
            else CorruptionInjector(seed=simulator.config.seed)
        )
        self._renderers: dict[MapName, MapRenderer] = {}

    def _renderer(self, map_name: MapName) -> MapRenderer:
        """One renderer per map, so node layout stays stable across ticks."""
        renderer = self._renderers.get(map_name)
        if renderer is None:
            evolution = self.simulator.evolution(map_name)

            def site_of(name: str, _evolution=evolution) -> str:
                try:
                    return _evolution.router_spec(name).site
                except KeyError:
                    return name.split("-", 1)[0]

            renderer = MapRenderer(site_of=site_of, seed=self.simulator.config.seed)
            self._renderers[map_name] = renderer
        return renderer

    def collect_tick(self, map_name: MapName, when: datetime) -> int | None:
        """Collect one snapshot; returns bytes written, or ``None`` if the
        availability model skipped this tick."""
        if not self.availability.is_collected(map_name, when):
            return None
        snapshot = self.simulator.snapshot(map_name, when)
        svg = self._renderer(map_name).render(snapshot)
        svg, _ = self.corruption.maybe_corrupt(svg, map_name, when)
        ref = self.store.write(map_name, when, "svg", svg)
        return ref.size_bytes

    def collect(
        self,
        start: datetime,
        end: datetime,
        maps: list[MapName] | None = None,
        interval: timedelta = SNAPSHOT_INTERVAL,
    ) -> CollectionStats:
        """Collect every tick in [start, end) for the given maps."""
        stats = CollectionStats()
        for map_name in maps if maps is not None else self.simulator.map_names:
            written = 0
            size = 0
            corrupted = 0
            skipped = 0
            current = start
            while current < end:
                if self.availability.is_collected(map_name, current):
                    snapshot = self.simulator.snapshot(map_name, current)
                    svg = self._renderer(map_name).render(snapshot)
                    svg, was_corrupted = self.corruption.maybe_corrupt(
                        svg, map_name, current
                    )
                    ref = self.store.write(map_name, current, "svg", svg)
                    written += 1
                    size += ref.size_bytes
                    corrupted += int(was_corrupted)
                else:
                    skipped += 1
                current += interval
            stats.files_written[map_name] = written
            stats.bytes_written[map_name] = size
            stats.corrupted[map_name] = corrupted
            stats.ticks_skipped[map_name] = skipped
            logger.info(
                "collected %s: %d files (%d corrupted, %d ticks skipped)",
                map_name.value,
                written,
                corrupted,
                skipped,
            )
        return stats
