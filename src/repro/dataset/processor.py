"""Bulk SVG → YAML processing with the paper's error accounting.

"Almost all the SVG files were processed by our script to produce YAML
files, leaving less than a hundred files per map unprocessed" — processing
must therefore *skip and count* failures, never abort.  Each failure is
recorded with its typed cause so Table 2's unprocessed column can be broken
down the way Section 4 discusses.
"""

from __future__ import annotations

import logging
from collections import Counter
from dataclasses import dataclass, field

from repro.constants import MapName
from repro.errors import ParseError, SvgError
from repro.dataset.store import DatasetStore
from repro.parsing.pipeline import parse_svg
from repro.yamlio.serialize import snapshot_to_yaml

logger = logging.getLogger(__name__)


@dataclass
class ProcessingStats:
    """Outcome of one bulk processing run over a map's SVG files."""

    map_name: MapName
    processed: int = 0
    unprocessed: int = 0
    yaml_bytes: int = 0
    failure_causes: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return self.processed + self.unprocessed


def process_map(
    store: DatasetStore,
    map_name: MapName,
    strict: bool = False,
    overwrite: bool = False,
) -> ProcessingStats:
    """Process every stored SVG of one map into its YAML twin.

    Args:
        store: dataset directory to read SVGs from and write YAMLs into.
        map_name: which map to process.
        strict: apply the whole-map sanity checks strictly (a failed check
            counts the file as unprocessed).
        overwrite: re-process files whose YAML already exists.

    Returns:
        Per-map counts mirroring a Table 2 row.
    """
    stats = ProcessingStats(map_name=map_name)
    for ref in store.iter_refs(map_name, "svg"):
        yaml_path = store.path_for(map_name, ref.timestamp, "yaml")
        if yaml_path.exists() and not overwrite:
            stats.processed += 1
            stats.yaml_bytes += yaml_path.stat().st_size
            continue
        try:
            parsed = parse_svg(
                ref.path.read_bytes(),
                map_name=map_name,
                timestamp=ref.timestamp,
                strict=strict,
            )
        except (SvgError, ParseError) as exc:
            stats.unprocessed += 1
            stats.failure_causes[type(exc).__name__] += 1
            logger.warning(
                "unprocessable %s (%s: %s)", ref.path.name, type(exc).__name__, exc
            )
            continue
        written = store.write(
            map_name, ref.timestamp, "yaml", snapshot_to_yaml(parsed.snapshot)
        )
        stats.processed += 1
        stats.yaml_bytes += written.size_bytes
    logger.info(
        "processed %s: %d ok, %d unprocessable",
        map_name.value,
        stats.processed,
        stats.unprocessed,
    )
    return stats
