"""Bulk SVG → YAML processing with the paper's error accounting.

"Almost all the SVG files were processed by our script to produce YAML
files, leaving less than a hundred files per map unprocessed" — processing
must therefore *skip and count* failures, never abort.  Each failure is
recorded with its typed cause so Table 2's unprocessed column can be broken
down the way Section 4 discusses.

The per-file extraction is a pure function (:func:`process_svg_bytes`,
bytes in → YAML text or a typed failure out) so the parallel engine in
:mod:`repro.dataset.engine` can ship it to worker processes and still
merge results into the exact same :class:`ProcessingStats` a serial run
produces.

Every outcome also lands in the active metrics registry
(:mod:`repro.telemetry`): ``repro_files_total{map,outcome}`` counts
processed / failed / skipped files, ``repro_failures_total{map,cause}``
breaks failures down by typed cause, and ``repro_yaml_bytes_total{map}``
tracks output volume — Table 2 as live counters instead of a return
value that dies with the run.
"""

from __future__ import annotations

import logging
from collections import Counter
from dataclasses import dataclass, field
from datetime import datetime

from time import perf_counter

from repro.constants import MapName
from repro.errors import ParseError, StatsMergeError, SvgError
from repro.dataset.store import DatasetStore
from repro.parsing.pipeline import (
    ParseOptions,
    StageTimings,
    observe_stage,
    parse_svg,
    resolve_parse_options,
)
from repro.telemetry import get_registry
from repro.yamlio.serialize import snapshot_to_yaml

logger = logging.getLogger(__name__)


def file_metrics(registry=None):
    """The per-file outcome instruments, pre-registered on ``registry``.

    Shared by the serial loop here and the parallel engine, so both
    paths produce the same metric families and series names.
    """
    registry = registry if registry is not None else get_registry()
    return (
        registry.counter(
            "repro_files_total",
            "SVG files by processing outcome (processed, failed, skipped)",
        ),
        registry.counter(
            "repro_failures_total",
            "Unprocessable SVG files by typed failure cause",
        ),
        registry.counter(
            "repro_yaml_bytes_total", "Bytes of YAML produced"
        ),
    )


@dataclass
class ProcessingStats:
    """Outcome of one bulk processing run over a map's SVG files."""

    map_name: MapName
    processed: int = 0
    unprocessed: int = 0
    yaml_bytes: int = 0
    failure_causes: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return self.processed + self.unprocessed

    def merge(self, other: "ProcessingStats") -> None:
        """Fold another run's counts into this one (same map)."""
        if other.map_name != self.map_name:
            raise StatsMergeError(
                f"cannot merge stats of {other.map_name.value} into "
                f"{self.map_name.value}"
            )
        self.processed += other.processed
        self.unprocessed += other.unprocessed
        self.yaml_bytes += other.yaml_bytes
        self.failure_causes.update(other.failure_causes)


@dataclass(frozen=True, slots=True)
class ProcessOutcome:
    """Result of extracting one SVG document: YAML text or a typed failure."""

    yaml_text: str | None
    failure_cause: str | None = None
    failure_message: str = ""

    @property
    def ok(self) -> bool:
        return self.yaml_text is not None


def process_svg_bytes(
    data: bytes,
    map_name: MapName,
    timestamp: datetime,
    strict: bool = False,
    options: ParseOptions | None = None,
    *,
    fast_path: bool | None = None,
    timings: StageTimings | None = None,
) -> ProcessOutcome:
    """Extract one SVG document into its YAML twin — pure and picklable.

    Never raises for the failure modes the paper counts as unprocessed
    (malformed SVGs, extraction failures): those come back as a
    :class:`ProcessOutcome` carrying the exception class name, exactly the
    key the Table 2 accounting uses.

    Args:
        options: parse configuration (fast path, attribution, threshold).
        fast_path: deprecated — use ``options=ParseOptions(fast_path=...)``.
        timings: accumulate per-stage wall time, including the YAML
            emission this function adds on top of :func:`parse_svg`.
    """
    opts = resolve_parse_options(options, fast_path=fast_path)
    files, failures, _ = file_metrics()
    try:
        parsed = parse_svg(
            data,
            map_name=map_name,
            timestamp=timestamp,
            strict=strict,
            options=opts,
            timings=timings,
        )
    except (SvgError, ParseError) as exc:
        files.inc(1, map=map_name.value, outcome="failed")
        failures.inc(1, map=map_name.value, cause=type(exc).__name__)
        return ProcessOutcome(
            yaml_text=None,
            failure_cause=type(exc).__name__,
            failure_message=str(exc),
        )
    started = perf_counter()
    text = snapshot_to_yaml(parsed.snapshot)
    elapsed = perf_counter() - started
    observe_stage("serialize", elapsed)
    if timings is not None:
        timings.add("serialize", elapsed)
    files.inc(1, map=map_name.value, outcome="processed")
    return ProcessOutcome(yaml_text=text)


def process_map(
    store: DatasetStore,
    map_name: MapName,
    strict: bool = False,
    overwrite: bool = False,
    workers: int | str | None = None,
    options: ParseOptions | None = None,
    *,
    fast_path: bool | None = None,
    timings: StageTimings | None = None,
) -> ProcessingStats:
    """Process every stored SVG of one map into its YAML twin.

    Args:
        store: dataset directory to read SVGs from and write YAMLs into.
        map_name: which map to process.
        strict: apply the whole-map sanity checks strictly (a failed check
            counts the file as unprocessed).
        overwrite: re-process files whose YAML already exists.
        workers: fan the extraction out over worker processes via
            :func:`repro.dataset.engine.process_map_parallel` (which also
            maintains the incremental manifest and the columnar snapshot
            index).  ``None`` or ``1`` keeps the simple serial loop
            below; ``0`` or ``"auto"`` means one worker per CPU core.
        options: parse configuration shared by every file.
        fast_path: deprecated — use ``options=ParseOptions(fast_path=...)``.
        timings: accumulate per-stage wall time over the run (serial loop
            only — worker-process timings travel through the telemetry
            registry instead).

    Returns:
        Per-map counts mirroring a Table 2 row.
    """
    opts = resolve_parse_options(options, fast_path=fast_path)
    if workers is not None and workers != 1:
        from repro.dataset.engine import process_map_parallel

        return process_map_parallel(
            store,
            map_name,
            workers=workers,
            strict=strict,
            overwrite=overwrite,
            options=opts,
        )
    registry = get_registry()
    files, _, yaml_bytes_counter = file_metrics(registry)
    stats = ProcessingStats(map_name=map_name)
    with registry.span(
        "repro_process_run",
        "Whole-map SVG→YAML run wall time",
        map=map_name.value,
        mode="serial",
    ):
        for ref in store.iter_refs(map_name, "svg"):
            yaml_path = store.path_for(map_name, ref.timestamp, "yaml")
            if yaml_path.exists() and not overwrite:
                stats.processed += 1
                stats.yaml_bytes += yaml_path.stat().st_size
                files.inc(1, map=map_name.value, outcome="skipped")
                continue
            outcome = process_svg_bytes(
                ref.path.read_bytes(),
                map_name,
                ref.timestamp,
                strict=strict,
                options=opts,
                timings=timings,
            )
            if not outcome.ok:
                stats.unprocessed += 1
                stats.failure_causes[outcome.failure_cause] += 1
                logger.warning(
                    "unprocessable %s (%s: %s)",
                    ref.path.name,
                    outcome.failure_cause,
                    outcome.failure_message,
                )
                continue
            written = store.write(map_name, ref.timestamp, "yaml", outcome.yaml_text)
            stats.processed += 1
            stats.yaml_bytes += written.size_bytes
            yaml_bytes_counter.inc(written.size_bytes, map=map_name.value)
    logger.info(
        "processed %s: %d ok, %d unprocessable",
        map_name.value,
        stats.processed,
        stats.unprocessed,
    )
    return stats
