"""Dataset validation.

"A concern regarding any dataset is its validity" (§6).  This module
makes the concern executable for a collected dataset directory:

* every YAML file must parse and satisfy the schema;
* every YAML must be internally consistent (loads in range, no
  self-links, no isolated routers);
* for a deterministic sample of snapshots, the YAML must agree with a
  fresh re-extraction of its SVG twin — the end-to-end check a skeptical
  researcher would run;
* SVG/YAML pairing must be sane (a YAML without its SVG is suspicious,
  an SVG without YAML is an unprocessed file).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.constants import MapName
from repro.dataset.store import DatasetStore
from repro.errors import ParseError, ReproError, SchemaError, SvgError
from repro.parsing.pipeline import ParseOptions, parse_svg, resolve_parse_options
from repro.rng import stable_uniform
from repro.topology.graph import isolated_routers
from repro.yamlio.deserialize import snapshot_from_yaml


@dataclass
class ValidationReport:
    """Outcome of validating one map's files."""

    map_name: MapName
    yaml_files: int = 0
    svg_files: int = 0
    schema_failures: int = 0
    consistency_failures: int = 0
    unpaired_yaml: int = 0
    unprocessed_svg: int = 0
    cross_checked: int = 0
    cross_check_failures: int = 0
    problems: list[str] = field(default_factory=list)
    failure_causes: Counter = field(default_factory=Counter)

    @property
    def ok(self) -> bool:
        """Whether the map's files passed every check.

        Unprocessed SVGs are expected (the paper leaves <100 per map) and
        do not fail validation by themselves.
        """
        return (
            self.schema_failures == 0
            and self.consistency_failures == 0
            and self.unpaired_yaml == 0
            and self.cross_check_failures == 0
        )


def _note(report: ValidationReport, message: str, limit: int = 20) -> None:
    if len(report.problems) < limit:
        report.problems.append(message)


def _check_consistency(report: ValidationReport, ref, snapshot) -> bool:
    """Internal invariants of one snapshot."""
    isolated = isolated_routers(snapshot)
    if isolated:
        _note(
            report,
            f"{ref.path.name}: {len(isolated)} isolated routers "
            f"(e.g. {isolated[0]})",
        )
        return False
    return True


def _link_signatures(snapshot) -> Counter:
    return Counter(
        tuple(
            sorted(
                (
                    (link.a.node, link.a.label, link.a.load),
                    (link.b.node, link.b.label, link.b.load),
                )
            )
        )
        for link in snapshot.links
    )


def validate_map(
    store: DatasetStore,
    map_name: MapName,
    cross_check_fraction: float = 0.1,
    seed: int = 0,
    options: ParseOptions | None = None,
    *,
    fast_path: bool | None = None,
) -> ValidationReport:
    """Validate one map's stored files.

    Args:
        store: the dataset directory.
        map_name: which map to validate.
        cross_check_fraction: deterministic fraction of snapshots whose
            SVG is re-extracted and compared to the stored YAML.
        seed: selects which snapshots get cross-checked.
        options: parse configuration for the cross-check re-extraction
            (the fast and DOM paths produce identical results).
        fast_path: deprecated — use ``options=ParseOptions(fast_path=...)``.
    """
    opts = resolve_parse_options(options, fast_path=fast_path)
    report = ValidationReport(map_name=map_name)
    svg_stamps = set(store.timestamps(map_name, "svg"))
    report.svg_files = len(svg_stamps)

    for ref in store.iter_refs(map_name, "yaml"):
        report.yaml_files += 1

        if ref.timestamp not in svg_stamps:
            report.unpaired_yaml += 1
            _note(report, f"{ref.path.name}: YAML without its source SVG")

        try:
            snapshot = snapshot_from_yaml(ref.path.read_text(encoding="utf-8"))
        except ReproError as exc:
            report.schema_failures += 1
            report.failure_causes[type(exc).__name__] += 1
            _note(report, f"{ref.path.name}: {exc}")
            continue

        if not _check_consistency(report, ref, snapshot):
            report.consistency_failures += 1
            continue

        should_check = (
            ref.timestamp in svg_stamps
            and stable_uniform("validate", seed, map_name.value, ref.timestamp)
            < cross_check_fraction
        )
        if should_check:
            report.cross_checked += 1
            try:
                reparsed = parse_svg(
                    store.read_bytes(map_name, ref.timestamp, "svg"),
                    map_name=map_name,
                    timestamp=ref.timestamp,
                    options=opts,
                )
            except (SvgError, ParseError) as exc:
                report.cross_check_failures += 1
                report.failure_causes[type(exc).__name__] += 1
                _note(report, f"{ref.path.name}: SVG no longer extracts ({exc})")
                continue
            if _link_signatures(reparsed.snapshot) != _link_signatures(snapshot):
                report.cross_check_failures += 1
                _note(
                    report,
                    f"{ref.path.name}: stored YAML disagrees with a fresh "
                    "extraction of its SVG",
                )

    report.unprocessed_svg = len(
        svg_stamps - set(store.timestamps(map_name, "yaml"))
    )
    return report


def validate_dataset(
    store: DatasetStore,
    cross_check_fraction: float = 0.1,
    seed: int = 0,
    options: ParseOptions | None = None,
    *,
    fast_path: bool | None = None,
) -> dict[MapName, ValidationReport]:
    """Validate every map present in the dataset."""
    opts = resolve_parse_options(options, fast_path=fast_path)
    reports: dict[MapName, ValidationReport] = {}
    for map_name in MapName:
        report = validate_map(
            store,
            map_name,
            cross_check_fraction=cross_check_fraction,
            seed=seed,
            options=opts,
        )
        if report.yaml_files or report.svg_files:
            reports[map_name] = report
    return reports
