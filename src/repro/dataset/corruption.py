"""Corruption injection — the malformed files the paper found in the wild.

Table 2 leaves "less than a hundred files per map unprocessed", for two
reported reasons: invalid SVGs ("malformed attribute values") and files
"lacking elements, such as OVH routers, resulting in a failure to find
intersections for a given link".  The injector reproduces both, at a
deterministic per-file rate, so the processing pipeline's error accounting
has something real to count.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import datetime

from repro.constants import MapName
from repro.rng import stable_uniform, substream


@dataclass(frozen=True, slots=True)
class CorruptionInjector:
    """Deterministically corrupts a small fraction of rendered SVGs."""

    seed: int = 2022
    #: Per-file probability of any corruption (the paper's rate is
    #: roughly 0.02-0.06 % per map).
    rate: float = 0.0004

    def is_corrupted(self, map_name: MapName, when: datetime) -> bool:
        """Whether the snapshot at ``when`` gets corrupted."""
        return stable_uniform("corrupt", self.seed, map_name.value, when) < self.rate

    def corrupt(self, svg: str, map_name: MapName, when: datetime) -> str:
        """Apply one of the paper's two corruption modes to a document."""
        rng = substream("corrupt-mode", self.seed, map_name.value, when)
        mode = rng.choice(("malformed-attribute", "missing-objects", "truncated"))
        if mode == "malformed-attribute":
            return self._mangle_attribute(svg, rng)
        if mode == "missing-objects":
            return self._drop_objects(svg)
        return self._truncate(svg, rng)

    def maybe_corrupt(self, svg: str, map_name: MapName, when: datetime) -> tuple[str, bool]:
        """Corrupt the document if this tick is selected; flag says whether."""
        if not self.is_corrupted(map_name, when):
            return svg, False
        return self.corrupt(svg, map_name, when), True

    @staticmethod
    def _mangle_attribute(svg: str, rng) -> str:
        """Replace one parsed numeric attribute with a malformed value.

        Targets a link-label box's ``x`` (always parsed by Algorithm 1) so
        the corruption is guaranteed to surface as a malformed-attribute
        failure, like the invalid files the paper observed.
        """
        matches = list(re.finditer(r'<rect class="node" x="[\d.]+"', svg))
        if not matches:
            return svg[: len(svg) // 2]
        chosen = matches[rng.randrange(len(matches))]
        return (
            svg[: chosen.start()]
            + '<rect class="node" x="12..34"'
            + svg[chosen.end():]
        )

    @staticmethod
    def _drop_objects(svg: str) -> str:
        """Remove every router/peering group, leaving links orphaned.

        Parsing such a file fails in Algorithm 2 with a missing-router
        error, matching the paper's second failure cause.
        """
        return re.sub(r'<g class="object[^"]*">.*?</g>', "", svg, flags=re.DOTALL)

    @staticmethod
    def _truncate(svg: str, rng) -> str:
        """Cut the document mid-tag: not well-formed XML any more."""
        cut = rng.randrange(len(svg) // 4, (3 * len(svg)) // 4)
        return svg[:cut]
