"""Dataset distribution archives.

The released OVH Weather dataset ships as downloadable archives per map
and period.  This module packs a dataset directory into per-map, per-month
``.tar.gz`` bundles and unpacks them back into a store — with the naming
carried by the archive entries themselves, so an unpacked bundle is a
valid dataset directory fragment.
"""

from __future__ import annotations

import tarfile
from dataclasses import dataclass
from pathlib import Path

from repro.constants import MapName
from repro.dataset.store import DatasetStore, SnapshotRef
from repro.errors import DatasetError


@dataclass(frozen=True, slots=True)
class ArchiveInfo:
    """One written bundle."""

    path: Path
    map_name: MapName
    kind: str
    year: int
    month: int
    members: int

    @property
    def size_bytes(self) -> int:
        return self.path.stat().st_size


def _month_key(ref: SnapshotRef) -> tuple[int, int]:
    return (ref.timestamp.year, ref.timestamp.month)


def pack_dataset(
    store: DatasetStore,
    output_dir: str | Path,
    maps: list[MapName] | None = None,
    kinds: tuple[str, ...] = ("svg", "yaml"),
) -> list[ArchiveInfo]:
    """Pack a dataset into per-map, per-month ``.tar.gz`` bundles.

    Archive names follow ``<map>-<kind>-<YYYY>-<MM>.tar.gz``; member names
    are the store-relative paths, so bundles unpack into a valid store.
    """
    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)
    written: list[ArchiveInfo] = []
    targets = maps if maps is not None else list(MapName)
    for map_name in targets:
        for kind in kinds:
            by_month: dict[tuple[int, int], list[SnapshotRef]] = {}
            for ref in store.iter_refs(map_name, kind):
                by_month.setdefault(_month_key(ref), []).append(ref)
            for (year, month), refs in sorted(by_month.items()):
                archive_path = (
                    output / f"{map_name.value}-{kind}-{year:04d}-{month:02d}.tar.gz"
                )
                with tarfile.open(archive_path, "w:gz") as archive:
                    for ref in refs:
                        archive.add(
                            ref.path,
                            arcname=str(ref.path.relative_to(store.root)),
                        )
                written.append(
                    ArchiveInfo(
                        path=archive_path,
                        map_name=map_name,
                        kind=kind,
                        year=year,
                        month=month,
                        members=len(refs),
                    )
                )
    return written


def unpack_archive(archive_path: str | Path, store: DatasetStore) -> int:
    """Unpack one bundle into a dataset store; returns the member count.

    Member paths are validated to stay inside the store root (no
    path traversal) and to look like dataset files.
    """
    archive_path = Path(archive_path)
    if not archive_path.exists():
        raise DatasetError(f"no archive at {archive_path}")
    root = store.root.resolve()
    count = 0
    with tarfile.open(archive_path, "r:gz") as archive:
        for member in archive.getmembers():
            if not member.isfile():
                continue
            target = (root / member.name).resolve()
            if not str(target).startswith(str(root)):
                raise DatasetError(
                    f"archive member escapes the store: {member.name!r}"
                )
            if target.suffix not in (".svg", ".yaml"):
                raise DatasetError(
                    f"archive member is not a dataset file: {member.name!r}"
                )
            extracted = archive.extractfile(member)
            if extracted is None:
                continue
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(extracted.read())
            count += 1
    return count
