"""Per-day shard indexes: O(new shard) maintenance for paper-scale corpora.

The monolithic ``index.bin`` is rewritten whole on every refresh — even a
fully-incremental build copies every carried-over row — so its
maintenance cost grows linearly with the archive.  At the paper's scale
(542k snapshots over 26 months, Table 2) that makes every five-minute
collection tick pay for the whole corpus.  This module partitions the
index by UTC day, matching the ``YYYY/MM/DD`` day directories the file
tree already uses::

    <root>/<map>/shards/2022-09-12/index.bin     one day's columnar index
    <root>/<map>/shards/manifest.json            per-shard generations

Each shard index is an ordinary :class:`~repro.dataset.index.SnapshotIndex`
file (same format, same checksums, own string tables), built by the same
incremental :func:`~repro.dataset.index.build_index` restricted to the
shard's refs.  The shard manifest pins, per shard, a fingerprint of the
source files' ``(epoch, size, mtime_ns)`` stats and the built index
file's ``(size, mtime_ns)`` generation — PR 6's generation-pinning idea
one level up.  :func:`compact_map_shards` then touches only shards whose
fingerprint changed: a steady-state ingest tick compacts exactly one
day-shard no matter how many years of history sit beneath it.

Readers get the same two tiers the monolithic index has:

* :func:`fresh_shard_indexes` — in-heap :class:`SnapshotIndex` objects
  for the loaders (``load_all`` / ``iter_snapshots``).
* :func:`open_sharded_query` — a :class:`ShardedMappedIndex` fanning one
  :class:`~repro.dataset.query.MappedIndex` out per shard, with a
  chaining :class:`ShardedScanResult`.  Interned ids are shard-local, so
  records and loads are resolved per shard before being chained.
"""

from __future__ import annotations

import hashlib
import json
import logging
import shutil
import threading
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from time import perf_counter
from typing import Callable, Iterator, Sequence

from repro.constants import MapName
from repro.dataset.index import SnapshotIndex, build_index, load_index_at
from repro.dataset.query import (
    ColumnBatch,
    LinkRecord,
    MappedIndex,
    ScanPredicate,
    ScanResult,
    resolve_backend,
)
from repro.dataset.store import (
    ShardedDatasetStore,
    SnapshotRef,
    atomic_write_text,
    parse_shard_key,
)
from repro.errors import DatasetError, SnapshotIndexError
from repro.parsing.pipeline import PARSER_VERSION
from repro.telemetry import get_registry

logger = logging.getLogger(__name__)

__all__ = [
    "ShardCompactionStats",
    "ShardEntry",
    "ShardManifest",
    "ShardedMappedIndex",
    "ShardedScanResult",
    "compact_map_shards",
    "fresh_shard_indexes",
    "open_sharded_query",
    "shard_fingerprint",
    "verify_shards",
]


def shard_fingerprint(refs: Sequence[SnapshotRef]) -> str:
    """SHA-256 over one shard's source ``(epoch, size, mtime_ns)`` stats.

    Parsing is deterministic, so unchanged source stats mean an unchanged
    shard index; this is the same freshness contract the monolithic
    index's fingerprint makes, computed *before* any build.
    """
    digest = hashlib.sha256()
    for ref in refs:
        size, mtime_ns = ref.stat_key()
        digest.update(
            b"%d %d %d;" % (int(ref.timestamp.timestamp()), size, mtime_ns)
        )
    return digest.hexdigest()


@dataclass(slots=True)
class ShardEntry:
    """What the shard manifest pins about one built shard index."""

    fingerprint: str
    rows: int
    skipped: int
    index_size: int
    index_mtime_ns: int

    def matches_index(self, path: Path) -> bool:
        """Cheap check that the built index file is still the pinned one."""
        try:
            stat = path.stat()
        except OSError:
            return False
        return (
            stat.st_size == self.index_size
            and stat.st_mtime_ns == self.index_mtime_ns
        )


class ShardManifest:
    """The per-map ledger of shard index generations.

    Serialised as JSON under ``<map>/shards/manifest.json``::

        {
          "parser_version": 2,
          "shards": {
            "2022-09-12": {
              "fingerprint": "...", "rows": 288, "skipped": 0,
              "index_size": 123456, "index_mtime_ns": ...
            }
          }
        }

    Version skew discards every entry, mirroring the processing manifest:
    a parser bump recompacts the whole archive cleanly.
    """

    def __init__(self, parser_version: int = PARSER_VERSION) -> None:
        self.parser_version = parser_version
        self.shards: dict[str, ShardEntry] = {}

    @classmethod
    def load(cls, path: Path) -> "ShardManifest":
        """Read a shard manifest, tolerating absence, corruption, and skew."""
        manifest = cls()
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return manifest
        if not isinstance(document, dict):
            return manifest
        if document.get("parser_version") != manifest.parser_version:
            logger.info(
                "shard manifest %s has parser version %r (current %r); recompacting",
                path,
                document.get("parser_version"),
                manifest.parser_version,
            )
            return manifest
        raw_shards = document.get("shards", {})
        if not isinstance(raw_shards, dict):
            return manifest
        for key, raw in raw_shards.items():
            try:
                parse_shard_key(key)
                manifest.shards[key] = ShardEntry(
                    fingerprint=str(raw["fingerprint"]),
                    rows=int(raw["rows"]),
                    skipped=int(raw["skipped"]),
                    index_size=int(raw["index_size"]),
                    index_mtime_ns=int(raw["index_mtime_ns"]),
                )
            except (KeyError, TypeError, ValueError, DatasetError):
                continue  # one bad entry just loses its skip, not the run
        return manifest

    def save(self, path: Path) -> None:
        """Write the shard manifest atomically and durably."""
        document = {
            "parser_version": self.parser_version,
            "shards": {
                key: {
                    "fingerprint": entry.fingerprint,
                    "rows": entry.rows,
                    "skipped": entry.skipped,
                    "index_size": entry.index_size,
                    "index_mtime_ns": entry.index_mtime_ns,
                }
                for key, entry in self.shards.items()
            },
        }
        atomic_write_text(path, json.dumps(document, sort_keys=True))


@dataclass
class ShardCompactionStats:
    """What one :func:`compact_map_shards` run did."""

    map_name: MapName
    built: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    rows: int = 0
    parsed: int = 0
    reused: int = 0
    seconds: float = 0.0


def compact_map_shards(
    store: ShardedDatasetStore,
    map_name: MapName,
    *,
    rebuild: bool = False,
    workers: int | str | None = None,
    on_error: Callable[[SnapshotRef, Exception], None] | None = None,
    parser_version: int = PARSER_VERSION,
    only: Sequence[str] | None = None,
) -> ShardCompactionStats:
    """Bring one map's shard indexes up to date — O(changed shards).

    Walks the day shards the YAML tree currently holds, fingerprints each
    shard's source stats (one ``stat()`` per file, no reads), and rebuilds
    only shards whose fingerprint or pinned index generation changed.
    Steady-state ingestion therefore pays for one shard per tick, however
    large the archive behind it has grown.  Shards whose last YAML file
    vanished are removed, index directory and manifest entry both.

    ``only`` restricts the walk to the named shard keys — the ingestion
    daemon passes the shards it touched since its last checkpoint, which
    drops even the fingerprint walk from O(corpus) to O(new shard).
    Other shards' manifest entries are left untouched and the
    removed-shard sweep is skipped (a later full compaction handles it).
    """
    registry = get_registry()
    compactions = registry.counter(
        "repro_shard_compactions_total",
        "Shard-compaction decisions by outcome (built, skipped, removed)",
    )
    compact_seconds = registry.histogram(
        "repro_shard_compact_seconds", "Whole-map shard compaction wall time"
    )
    started = perf_counter()
    manifest_path = store.shards_manifest_path(map_name)
    manifest = ShardManifest.load(manifest_path)
    manifest.parser_version = parser_version
    if rebuild:
        manifest.shards.clear()
    stats = ShardCompactionStats(map_name=map_name)

    if only is not None:
        for key in only:
            parse_shard_key(key)
        live_keys = [
            key
            for key in only
            if any(True for _ in store.iter_shard_refs(map_name, "yaml", key))
        ]
    else:
        live_keys = store.shard_keys(map_name, "yaml")
    for key in live_keys:
        refs = list(store.iter_shard_refs(map_name, "yaml", key))
        fingerprint = shard_fingerprint(refs)
        index_path = store.shard_index_path(map_name, key)
        entry = manifest.shards.get(key)
        if (
            not rebuild
            and entry is not None
            and entry.fingerprint == fingerprint
            and entry.matches_index(index_path)
        ):
            stats.skipped.append(key)
            stats.rows += entry.rows
            continue
        index, build_stats = build_index(
            store,
            map_name,
            rebuild=rebuild,
            workers=workers,
            on_error=on_error,
            parser_version=parser_version,
            refs=refs,
            index_path=index_path,
        )
        index_stat = index_path.stat()
        manifest.shards[key] = ShardEntry(
            fingerprint=fingerprint,
            rows=len(index),
            skipped=len(index.skipped),
            index_size=index_stat.st_size,
            index_mtime_ns=index_stat.st_mtime_ns,
        )
        stats.built.append(key)
        stats.rows += len(index)
        stats.parsed += build_stats.parsed
        stats.reused += build_stats.reused

    if only is None:
        for key in sorted(set(manifest.shards) - set(live_keys)):
            del manifest.shards[key]
            shutil.rmtree(
                store.shard_index_path(map_name, key).parent, ignore_errors=True
            )
            stats.removed.append(key)

    manifest.save(manifest_path)
    stats.seconds = perf_counter() - started
    compact_seconds.observe(stats.seconds, map=map_name.value)
    for outcome, keys in (
        ("built", stats.built),
        ("skipped", stats.skipped),
        ("removed", stats.removed),
    ):
        compactions.inc(len(keys), map=map_name.value, outcome=outcome)
    logger.info(
        "compacted %s: %d shards built, %d skipped, %d removed (%d rows)",
        map_name.value,
        len(stats.built),
        len(stats.skipped),
        len(stats.removed),
        stats.rows,
    )
    return stats


def verify_shards(
    store: ShardedDatasetStore, map_name: MapName
) -> list[tuple[str, ShardEntry]] | None:
    """The manifest's shard list iff it exactly covers the live YAML tree.

    One directory walk plus one ``stat()`` per file — the sharded
    equivalent of the monolithic index's freshness walk.  Any skew
    (missing shard, extra shard, changed fingerprint, replaced index
    file, parser-version mismatch) reports unfresh.
    """
    cache = get_registry().counter(
        "repro_shard_cache_total",
        "Sharded-index freshness checks by outcome (hit = shards served)",
    )
    manifest = ShardManifest.load(store.shards_manifest_path(map_name))
    live_keys = store.shard_keys(map_name, "yaml")
    fresh = manifest.parser_version == PARSER_VERSION and set(live_keys) == set(
        manifest.shards
    )
    entries: list[tuple[str, ShardEntry]] = []
    if fresh:
        for key in live_keys:
            entry = manifest.shards[key]
            refs = list(store.iter_shard_refs(map_name, "yaml", key))
            if entry.fingerprint != shard_fingerprint(refs) or not entry.matches_index(
                store.shard_index_path(map_name, key)
            ):
                fresh = False
                break
            entries.append((key, entry))
    cache.inc(1, map=map_name.value, outcome="hit" if fresh else "miss")
    return entries if fresh else None


def fresh_shard_indexes(
    store: ShardedDatasetStore, map_name: MapName
) -> list[SnapshotIndex] | None:
    """Every shard index, in time order, iff the set is fresh.

    ``None`` on any staleness or load failure — callers fall back to the
    YAML object path exactly as they do for the monolithic index.  An
    empty list means a fresh, empty dataset.
    """
    entries = verify_shards(store, map_name)
    if entries is None:
        return None
    indexes: list[SnapshotIndex] = []
    for key, _ in entries:
        index = load_index_at(store.shard_index_path(map_name, key), map_name)
        if index is None or index.parser_version != PARSER_VERSION:
            return None
        indexes.append(index)
    return indexes


@dataclass
class _ShardSlot:
    """One shard's place in a sharded engine, opened on first demand."""

    key: str
    path: Path
    start_epoch: int  #: UTC midnight the shard key names
    end_epoch: int  #: start of the next UTC day (half-open)
    rows: int  #: row count pinned by the shard manifest
    engine: MappedIndex | None = None


class ShardedMappedIndex:
    """One map's shard indexes served as a single query engine.

    Fans a :class:`~repro.dataset.query.MappedIndex` out per shard, in
    time order.  Interned ids are shard-local, so cross-shard results
    are chained at the record/load level, never by concatenating id
    columns.

    Shards open **lazily**: a scan binds its time window to the shard
    keys first (each ``YYYY-MM-DD`` shard covers exactly one half-open
    UTC day, because shard membership is derived from the snapshot
    filename timestamps), and only the overlapping shards are ever
    mapped.  A window that touches two days of a two-year archive opens
    two files, not seven hundred.  Opening is thread-safe, so server
    worker threads can share one instance.
    """

    def __init__(
        self,
        map_name: MapName,
        shards: Sequence[tuple[str, Path, int]],
        *,
        backend: str = "auto",
        use_mmap: bool = True,
    ) -> None:
        self.map_name = map_name
        #: Requested (not yet resolved) backend; validated eagerly so a
        #: typo fails at open time, not at first scan.
        self._requested_backend = backend
        self._resolved_backend = resolve_backend(backend)
        self._use_mmap = use_mmap
        self._slots: list[_ShardSlot] = []
        for key, path, rows in shards:
            start = int(parse_shard_key(key).timestamp())
            self._slots.append(
                _ShardSlot(
                    key=key,
                    path=path,
                    start_epoch=start,
                    end_epoch=start + 86400,
                    rows=rows,
                )
            )
        self._open_lock = threading.Lock()
        self.closed = False

    @property
    def backend(self) -> str:
        """The column backend the shard engines use (uniform by build)."""
        for slot in self._slots:
            if slot.engine is not None:
                return slot.engine.backend
        return self._resolved_backend

    @property
    def mapped(self) -> bool:
        """Whether every *opened* shard engine is serving from an mmap."""
        opened = [slot.engine for slot in self._slots if slot.engine is not None]
        return bool(opened) and all(engine.mapped for engine in opened)

    @property
    def shard_keys(self) -> list[str]:
        """The shard keys served, in time order (no shard is opened)."""
        return [slot.key for slot in self._slots]

    @property
    def opened_shard_keys(self) -> list[str]:
        """The shard keys actually mapped so far — the prune's witness."""
        return [slot.key for slot in self._slots if slot.engine is not None]

    def __len__(self) -> int:
        """Total rows served, from manifest hints where still unopened."""
        return sum(
            len(slot.engine) if slot.engine is not None else slot.rows
            for slot in self._slots
        )

    def check_generation(self) -> None:
        """Raise :class:`StaleIndexError` if any opened shard was superseded.

        Unopened slots have nothing mapped to go stale; callers that
        need whole-set freshness use the shard manifest (see
        :func:`repro.dataset.handles.read_generation`).
        """
        for slot in self._slots:
            if slot.engine is not None:
                slot.engine.check_generation()

    def _engine(self, slot: _ShardSlot) -> MappedIndex:
        """The slot's engine, mapping the shard on first use (thread-safe)."""
        self._require_open()
        engine = slot.engine
        if engine is not None:
            return engine
        with self._open_lock:
            if slot.engine is None:
                opened = MappedIndex.open(
                    slot.path,
                    backend=self._requested_backend,
                    use_mmap=self._use_mmap,
                )
                if (
                    opened.map_name != self.map_name
                    or opened.parser_version != PARSER_VERSION
                ):
                    mismatch = (
                        f"shard {slot.key} index {slot.path} belongs to "
                        f"{opened.map_name.value} parser v{opened.parser_version}, "
                        f"not {self.map_name.value} parser v{PARSER_VERSION}"
                    )
                    opened.close()
                    raise SnapshotIndexError(mismatch)
                slot.engine = opened
            return slot.engine

    def _require_open(self) -> None:
        if self.closed:
            raise SnapshotIndexError("sharded query engine is closed")

    def _overlapping(
        self, start: datetime | None, end: datetime | None
    ) -> list[_ShardSlot]:
        """Slots whose UTC day intersects the half-open ``[start, end)``."""
        selected = []
        for slot in self._slots:
            if start is not None and int(start.timestamp()) >= slot.end_epoch:
                continue
            if end is not None and int(end.timestamp()) <= slot.start_epoch:
                continue
            selected.append(slot)
        return selected

    def iter_engines(
        self,
        start: datetime | None = None,
        end: datetime | None = None,
        *,
        reverse: bool = False,
    ) -> Iterator[MappedIndex]:
        """Shard engines overlapping the window, opened as consumed.

        ``reverse=True`` walks newest-first — a latest-row lookup opens
        one shard and stops instead of mapping the whole archive.
        """
        slots = self._overlapping(start, end)
        for slot in reversed(slots) if reverse else slots:
            yield self._engine(slot)

    def scan(self, predicate: ScanPredicate | None = None) -> "ShardedScanResult":
        """Scan the shards the predicate's window touches, in time order.

        Shards partition time, so per-shard window bisection composes to
        exactly the global window and chained results keep global time
        order; shards wholly outside the window are pruned from the
        shard-key span without ever being opened.
        """
        if predicate is None:
            predicate = ScanPredicate()
        selected = self._overlapping(predicate.start, predicate.end)
        pruning = get_registry().counter(
            "repro_shard_scan_shards_total",
            "Per-scan shard decisions (scanned vs pruned by the time window)",
        )
        pruning.inc(len(selected), map=self.map_name.value, outcome="scanned")
        pruning.inc(
            len(self._slots) - len(selected),
            map=self.map_name.value,
            outcome="pruned",
        )
        return ShardedScanResult(
            index=self,
            results=[self._engine(slot).scan(predicate) for slot in selected],
        )

    def close(self) -> None:
        """Close every opened shard engine."""
        if self.closed:
            return
        self.closed = True
        for slot in self._slots:
            if slot.engine is not None:
                slot.engine.close()

    def __enter__(self) -> "ShardedMappedIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass(frozen=True)
class ShardedScanResult:
    """Per-shard scan results chained into one, in time order.

    Mirrors the :class:`~repro.dataset.query.ScanResult` surface the CLI
    and analyses consume: sizes sum, record and load accessors chain.
    ``batches()`` yields each shard's column batches unchanged — loads
    and timestamps are physical values and safe to mix, but the interned
    id columns are only meaningful against the *owning* shard's tables,
    which is why :meth:`records` resolves strings before chaining.
    """

    index: ShardedMappedIndex
    results: list[ScanResult]

    def __len__(self) -> int:
        return sum(len(result) for result in self.results)

    @property
    def snapshot_count(self) -> int:
        """Snapshot rows the scan covered across all shards."""
        return sum(result.snapshot_count for result in self.results)

    def batches(self, size: int = 65536) -> Iterator[ColumnBatch]:
        """Every shard's column batches, in shard (time) order."""
        for result in self.results:
            yield from result.batches(size)

    def directed_loads(self) -> list[float]:
        """Every matching load sample across shards, both directions."""
        out: list[float] = []
        for result in self.results:
            out.extend(result.directed_loads())
        return out

    def records(self) -> Iterator[LinkRecord]:
        """The matches resolved to strings, chained in time order."""
        for result in self.results:
            yield from result.records()


def open_sharded_query(
    store: ShardedDatasetStore,
    map_name: MapName,
    *,
    backend: str = "auto",
    use_mmap: bool = True,
    require_fresh: bool = True,
) -> ShardedMappedIndex | None:
    """Open a sharded map for querying, but only if every shard is fresh.

    The sharded counterpart of :func:`repro.dataset.query.open_query`:
    verifies the shard manifest against the live tree (skippable via
    ``require_fresh=False`` for serving layers that poll generation
    tokens themselves), then hands the manifest's shard list to a
    *lazy* :class:`ShardedMappedIndex` — no shard file is mapped until
    a query's time window actually reaches it.  An unsound shard
    therefore surfaces at first touch as :class:`SnapshotIndexError`,
    not here.
    """
    if require_fresh:
        entries = verify_shards(store, map_name)
        if entries is None:
            return None
    else:
        manifest = ShardManifest.load(store.shards_manifest_path(map_name))
        if manifest.parser_version != PARSER_VERSION:
            return None
        entries = [(key, manifest.shards[key]) for key in sorted(manifest.shards)]
    shards = [
        (key, store.shard_index_path(map_name, key), entry.rows)
        for key, entry in entries
    ]
    return ShardedMappedIndex(
        map_name, shards, backend=backend, use_mmap=use_mmap
    )
