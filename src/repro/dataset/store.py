"""On-disk dataset layout.

One directory per map, ``svg/`` and ``yaml/`` subtrees, files named by UTC
timestamp::

    <root>/<map>/svg/2022/09/12/europe-20220912T000000Z.svg
    <root>/<map>/yaml/2022/09/12/europe-20220912T000000Z.yaml

Timestamps are recoverable from file names alone, which is how the catalog
indexes half a million files without opening any.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterator

from repro.constants import MapName
from repro.errors import DatasetError, SnapshotNotFoundError

_TIMESTAMP_FORMAT = "%Y%m%dT%H%M%SZ"
_FILE_PATTERN = re.compile(
    r"^(?P<map>[a-z-]+)-(?P<stamp>\d{8}T\d{6}Z)\.(?P<kind>svg|yaml)$"
)


def format_timestamp(when: datetime) -> str:
    """UTC compact timestamp used in snapshot file names."""
    return when.astimezone(timezone.utc).strftime(_TIMESTAMP_FORMAT)


def parse_timestamp(stamp: str) -> datetime:
    """Inverse of :func:`format_timestamp`."""
    try:
        return datetime.strptime(stamp, _TIMESTAMP_FORMAT).replace(tzinfo=timezone.utc)
    except ValueError as exc:
        raise DatasetError(f"bad snapshot timestamp {stamp!r}") from exc


@dataclass(frozen=True, slots=True)
class SnapshotRef:
    """A reference to one stored snapshot file."""

    map_name: MapName
    timestamp: datetime
    kind: str  # "svg" or "yaml"
    path: Path

    @property
    def size_bytes(self) -> int:
        """File size on disk."""
        return self.path.stat().st_size


class DatasetStore:
    """Reads and writes the dataset directory tree."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, map_name: MapName, when: datetime, kind: str) -> Path:
        """Where a snapshot file lives (whether or not it exists yet)."""
        if kind not in ("svg", "yaml"):
            raise DatasetError(f"unknown snapshot kind {kind!r}")
        utc = when.astimezone(timezone.utc)
        return (
            self.root
            / map_name.value
            / kind
            / f"{utc.year:04d}"
            / f"{utc.month:02d}"
            / f"{utc.day:02d}"
            / f"{map_name.value}-{format_timestamp(when)}.{kind}"
        )

    def manifest_path(self, map_name: MapName) -> Path:
        """Where the incremental-processing manifest of one map lives.

        The manifest sits next to the ``svg/`` and ``yaml/`` subtrees and is
        owned by :mod:`repro.dataset.engine`; the store only names it.
        """
        return self.root / map_name.value / "manifest.json"

    def index_path(self, map_name: MapName) -> Path:
        """Where the columnar snapshot index of one map lives.

        Like the manifest, it sits next to the ``svg/`` and ``yaml/``
        subtrees; :mod:`repro.dataset.index` owns its contents.
        """
        return self.root / map_name.value / "index.bin"

    def write(self, map_name: MapName, when: datetime, kind: str, data: str | bytes) -> SnapshotRef:
        """Write one snapshot file, creating directories as needed."""
        path = self.path_for(map_name, when, kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        if isinstance(data, str):
            data = data.encode("utf-8")
        path.write_bytes(data)
        return SnapshotRef(map_name=map_name, timestamp=when, kind=kind, path=path)

    def read_bytes(self, map_name: MapName, when: datetime, kind: str) -> bytes:
        """Read one snapshot file's raw contents."""
        path = self.path_for(map_name, when, kind)
        if not path.exists():
            raise SnapshotNotFoundError(
                f"no {kind} snapshot of {map_name.value} at {when.isoformat()}"
            )
        return path.read_bytes()

    def iter_refs(self, map_name: MapName, kind: str) -> Iterator[SnapshotRef]:
        """All stored snapshots of one map and kind, in timestamp order."""
        base = self.root / map_name.value / kind
        if not base.exists():
            return
        refs: list[SnapshotRef] = []
        for path in base.rglob(f"*.{kind}"):
            match = _FILE_PATTERN.match(path.name)
            if match is None or match.group("map") != map_name.value:
                continue
            refs.append(
                SnapshotRef(
                    map_name=map_name,
                    timestamp=parse_timestamp(match.group("stamp")),
                    kind=kind,
                    path=path,
                )
            )
        refs.sort(key=lambda ref: ref.timestamp)
        yield from refs

    def timestamps(self, map_name: MapName, kind: str = "svg") -> list[datetime]:
        """Sorted snapshot timestamps of one map."""
        return [ref.timestamp for ref in self.iter_refs(map_name, kind)]

    def file_stats(self, map_name: MapName, kind: str) -> tuple[int, int]:
        """(file count, total bytes) for one map and kind — Table 2 inputs."""
        count = 0
        total = 0
        for ref in self.iter_refs(map_name, kind):
            count += 1
            total += ref.size_bytes
        return count, total
