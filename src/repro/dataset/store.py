"""Storage backends for the snapshot dataset.

The canonical on-disk layout has one directory per map with ``svg/`` and
``yaml/`` subtrees, files named by UTC timestamp::

    <root>/<map>/svg/2022/09/12/europe-20220912T000000Z.svg
    <root>/<map>/yaml/2022/09/12/europe-20220912T000000Z.yaml

Timestamps are recoverable from file names alone, which is how the catalog
indexes half a million files without opening any.

Three backends implement the :class:`StorageBackend` protocol:

* :class:`DatasetStore` — the flat local-dir layout above, with one
  monolithic ``index.bin`` per map.
* :class:`ShardedDatasetStore` — same file tree (the ``YYYY/MM/DD`` day
  directories already partition snapshots by map/day) plus per-day shard
  indexes under ``<map>/shards/<YYYY-MM-DD>/index.bin`` and a shard
  manifest, so index maintenance is O(new shard) instead of O(corpus).
* :class:`InMemoryStore` — a dict-backed store for tests; no filesystem.

A sharded dataset is marked by a ``layout.json`` at the root so that
:func:`open_store` can reconstruct the right backend transparently.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

from repro.constants import MapName
from repro.errors import DatasetError, SnapshotNotFoundError

_TIMESTAMP_FORMAT = "%Y%m%dT%H%M%SZ"
_FILE_PATTERN = re.compile(
    r"^(?P<map>[a-z-]+)-(?P<stamp>\d{8}T\d{6}Z)\.(?P<kind>svg|yaml)$"
)
_SHARD_KEY_PATTERN = re.compile(r"^\d{4}-\d{2}-\d{2}$")

LAYOUT_FILE_NAME = "layout.json"
SHARDED_LAYOUT = "sharded"


def format_timestamp(when: datetime) -> str:
    """UTC compact timestamp used in snapshot file names."""
    return when.astimezone(timezone.utc).strftime(_TIMESTAMP_FORMAT)


def parse_timestamp(stamp: str) -> datetime:
    """Inverse of :func:`format_timestamp`."""
    try:
        return datetime.strptime(stamp, _TIMESTAMP_FORMAT).replace(tzinfo=timezone.utc)
    except ValueError as exc:
        raise DatasetError(f"bad snapshot timestamp {stamp!r}") from exc


def shard_key(when: datetime) -> str:
    """The UTC-day shard a snapshot belongs to, e.g. ``"2022-09-12"``."""
    utc = when.astimezone(timezone.utc)
    return f"{utc.year:04d}-{utc.month:02d}-{utc.day:02d}"


def parse_shard_key(key: str) -> datetime:
    """The UTC midnight a shard key names; rejects malformed keys."""
    if _SHARD_KEY_PATTERN.match(key) is None:
        raise DatasetError(f"bad shard key {key!r}")
    try:
        return datetime.strptime(key, "%Y-%m-%d").replace(tzinfo=timezone.utc)
    except ValueError as exc:
        raise DatasetError(f"bad shard key {key!r}") from exc


def fsync_directory(path: Path) -> None:
    """Flush a directory entry to disk; a no-op where unsupported."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, data: bytes, *, durable: bool = True) -> int:
    """Write *data* so readers never observe a partial file.

    The bytes land in a sibling temp file which is fsync'd and then
    ``os.replace``'d over *path*; with ``durable`` the parent directory
    entry is flushed too, so a mid-write kill leaves either the old file
    or the new one — never a truncated hybrid.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_name(path.name + ".tmp")
    with open(scratch, "wb") as handle:
        handle.write(data)
        handle.flush()
        if durable:
            os.fsync(handle.fileno())
    os.replace(scratch, path)
    if durable:
        fsync_directory(path.parent)
    return len(data)


def atomic_write_text(path: Path, text: str, *, durable: bool = True) -> int:
    """UTF-8 variant of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode("utf-8"), durable=durable)


@dataclass(frozen=True, slots=True)
class SnapshotRef:
    """A reference to one stored snapshot file.

    ``size`` and ``mtime_ns`` are optional stat hints: backends that
    already know them (the in-memory store, directory walks that stat
    anyway) populate them so consumers can avoid a per-file ``stat()``.
    """

    map_name: MapName
    timestamp: datetime
    kind: str  # "svg" or "yaml"
    path: Path
    size: int | None = None
    mtime_ns: int | None = None

    @property
    def size_bytes(self) -> int:
        """File size in bytes (from the hint, else one ``stat()``)."""
        if self.size is not None:
            return self.size
        return self.path.stat().st_size

    def stat_key(self) -> tuple[int, int]:
        """``(size, mtime_ns)`` freshness key, stat-free when hinted."""
        if self.size is not None and self.mtime_ns is not None:
            return self.size, self.mtime_ns
        stat = self.path.stat()
        return stat.st_size, stat.st_mtime_ns


@runtime_checkable
class StorageBackend(Protocol):
    """The minimal surface the dataset pipeline needs from storage.

    Implementations must keep :meth:`iter_refs` sorted by timestamp and
    raise :class:`~repro.errors.SnapshotNotFoundError` for missing reads.
    ``persistent`` says whether manifest/index side-car files are real
    filesystem paths (the in-memory backend has neither).
    """

    persistent: bool
    root: Path

    def path_for(self, map_name: MapName, when: datetime, kind: str) -> Path: ...

    def manifest_path(self, map_name: MapName) -> Path: ...

    def index_path(self, map_name: MapName) -> Path: ...

    def write(
        self, map_name: MapName, when: datetime, kind: str, data: str | bytes
    ) -> SnapshotRef: ...

    def read_bytes(self, map_name: MapName, when: datetime, kind: str) -> bytes: ...

    def read_ref(self, ref: SnapshotRef) -> bytes: ...

    def iter_refs(self, map_name: MapName, kind: str) -> Iterator[SnapshotRef]: ...

    def timestamps(self, map_name: MapName, kind: str = "svg") -> list[datetime]: ...

    def file_stats(self, map_name: MapName, kind: str) -> tuple[int, int]: ...


class DatasetStore:
    """Reads and writes the flat local-dir dataset tree."""

    persistent = True

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, map_name: MapName, when: datetime, kind: str) -> Path:
        """Where a snapshot file lives (whether or not it exists yet)."""
        if kind not in ("svg", "yaml"):
            raise DatasetError(f"unknown snapshot kind {kind!r}")
        utc = when.astimezone(timezone.utc)
        return (
            self.root
            / map_name.value
            / kind
            / f"{utc.year:04d}"
            / f"{utc.month:02d}"
            / f"{utc.day:02d}"
            / f"{map_name.value}-{format_timestamp(when)}.{kind}"
        )

    def manifest_path(self, map_name: MapName) -> Path:
        """Where the incremental-processing manifest of one map lives.

        The manifest sits next to the ``svg/`` and ``yaml/`` subtrees and is
        owned by :mod:`repro.dataset.engine`; the store only names it.
        """
        return self.root / map_name.value / "manifest.json"

    def index_path(self, map_name: MapName) -> Path:
        """Where the columnar snapshot index of one map lives.

        Like the manifest, it sits next to the ``svg/`` and ``yaml/``
        subtrees; :mod:`repro.dataset.index` owns its contents.
        """
        return self.root / map_name.value / "index.bin"

    def journal_path(self, map_name: MapName) -> Path:
        """Where the ingestion write-ahead journal of one map lives."""
        return self.root / map_name.value / "journal.wal"

    def write(self, map_name: MapName, when: datetime, kind: str, data: str | bytes) -> SnapshotRef:
        """Write one snapshot file, creating directories as needed."""
        path = self.path_for(map_name, when, kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        if isinstance(data, str):
            data = data.encode("utf-8")
        path.write_bytes(data)
        return SnapshotRef(
            map_name=map_name, timestamp=when, kind=kind, path=path, size=len(data)
        )

    def read_bytes(self, map_name: MapName, when: datetime, kind: str) -> bytes:
        """Read one snapshot file's raw contents."""
        path = self.path_for(map_name, when, kind)
        if not path.exists():
            raise SnapshotNotFoundError(
                f"no {kind} snapshot of {map_name.value} at {when.isoformat()}"
            )
        return path.read_bytes()

    def read_ref(self, ref: SnapshotRef) -> bytes:
        """Read the raw contents a :class:`SnapshotRef` points at."""
        try:
            return ref.path.read_bytes()
        except FileNotFoundError as exc:
            raise SnapshotNotFoundError(
                f"no {ref.kind} snapshot of {ref.map_name.value} at "
                f"{ref.timestamp.isoformat()}"
            ) from exc

    def iter_refs(self, map_name: MapName, kind: str) -> Iterator[SnapshotRef]:
        """All stored snapshots of one map and kind, in timestamp order."""
        base = self.root / map_name.value / kind
        if not base.exists():
            return
        refs: list[SnapshotRef] = []
        for path in base.rglob(f"*.{kind}"):
            match = _FILE_PATTERN.match(path.name)
            if match is None or match.group("map") != map_name.value:
                continue
            refs.append(
                SnapshotRef(
                    map_name=map_name,
                    timestamp=parse_timestamp(match.group("stamp")),
                    kind=kind,
                    path=path,
                )
            )
        refs.sort(key=lambda ref: ref.timestamp)
        yield from refs

    def timestamps(self, map_name: MapName, kind: str = "svg") -> list[datetime]:
        """Sorted snapshot timestamps of one map."""
        return [ref.timestamp for ref in self.iter_refs(map_name, kind)]

    def file_stats(self, map_name: MapName, kind: str) -> tuple[int, int]:
        """(file count, total bytes) for one map and kind — Table 2 inputs."""
        count = 0
        total = 0
        for ref in self.iter_refs(map_name, kind):
            count += 1
            total += ref.size_bytes
        return count, total


class ShardedDatasetStore(DatasetStore):
    """Flat layout plus per-day shard indexes.

    The snapshot file tree is byte-identical to :class:`DatasetStore` —
    the ``YYYY/MM/DD`` day directories already partition the corpus by
    map/day, so "sharding" adds only the index side-cars::

        <root>/<map>/shards/<YYYY-MM-DD>/index.bin   per-shard columnar index
        <root>/<map>/shards/manifest.json            shard generations
        <root>/layout.json                           backend marker

    :mod:`repro.dataset.shards` owns the shard manifest and compaction;
    the store only names the paths and enumerates shard members.
    """

    def __init__(self, root: str | Path) -> None:
        super().__init__(root)

    def mark(self) -> None:
        """Persist the layout marker so :func:`open_store` picks this backend."""
        payload = json.dumps({"layout": SHARDED_LAYOUT, "version": 1}, indent=2)
        atomic_write_text(self.root / LAYOUT_FILE_NAME, payload + "\n")

    def shards_root(self, map_name: MapName) -> Path:
        """The directory holding one map's shard indexes and manifest."""
        return self.root / map_name.value / "shards"

    def shards_manifest_path(self, map_name: MapName) -> Path:
        """Where the per-shard generation manifest of one map lives."""
        return self.shards_root(map_name) / "manifest.json"

    def shard_index_path(self, map_name: MapName, key: str) -> Path:
        """Where one shard's columnar index lives."""
        parse_shard_key(key)
        return self.shards_root(map_name) / key / "index.bin"

    def shard_day_dir(self, map_name: MapName, kind: str, key: str) -> Path:
        """The snapshot day directory a shard key maps onto."""
        if kind not in ("svg", "yaml"):
            raise DatasetError(f"unknown snapshot kind {kind!r}")
        day = parse_shard_key(key)
        return (
            self.root
            / map_name.value
            / kind
            / f"{day.year:04d}"
            / f"{day.month:02d}"
            / f"{day.day:02d}"
        )

    def shard_keys(self, map_name: MapName, kind: str = "yaml") -> list[str]:
        """Sorted shard keys that currently hold at least one snapshot."""
        base = self.root / map_name.value / kind
        if not base.exists():
            return []
        keys: set[str] = set()
        for year_dir in base.iterdir():
            if not year_dir.is_dir() or not year_dir.name.isdigit():
                continue
            for month_dir in year_dir.iterdir():
                if not month_dir.is_dir() or not month_dir.name.isdigit():
                    continue
                for day_dir in month_dir.iterdir():
                    if not day_dir.is_dir() or not day_dir.name.isdigit():
                        continue
                    if any(day_dir.glob(f"*.{kind}")):
                        keys.add(
                            f"{year_dir.name}-{month_dir.name}-{day_dir.name}"
                        )
        return sorted(keys)

    def iter_shard_refs(
        self, map_name: MapName, kind: str, key: str
    ) -> Iterator[SnapshotRef]:
        """One shard's snapshots in timestamp order — an O(shard) listing."""
        day_dir = self.shard_day_dir(map_name, kind, key)
        if not day_dir.exists():
            return
        refs: list[SnapshotRef] = []
        for path in day_dir.glob(f"*.{kind}"):
            match = _FILE_PATTERN.match(path.name)
            if match is None or match.group("map") != map_name.value:
                continue
            refs.append(
                SnapshotRef(
                    map_name=map_name,
                    timestamp=parse_timestamp(match.group("stamp")),
                    kind=kind,
                    path=path,
                )
            )
        refs.sort(key=lambda ref: ref.timestamp)
        yield from refs


class InMemoryStore:
    """Dict-backed :class:`StorageBackend` for tests — no filesystem.

    Paths returned by :meth:`path_for` are synthetic (under a ``<memory>``
    pseudo-root) and must not be opened; use :meth:`read_bytes` or
    :meth:`read_ref`. Writes stamp a monotonically increasing fake
    ``mtime_ns`` so freshness keys change on overwrite, like a real disk.
    """

    persistent = False

    def __init__(self) -> None:
        self.root = Path("<memory>")
        self._files: dict[tuple[str, str, str], tuple[bytes, int]] = {}
        self._ticks = 0

    def _key(self, map_name: MapName, when: datetime, kind: str) -> tuple[str, str, str]:
        if kind not in ("svg", "yaml"):
            raise DatasetError(f"unknown snapshot kind {kind!r}")
        return map_name.value, kind, format_timestamp(when)

    def path_for(self, map_name: MapName, when: datetime, kind: str) -> Path:
        """Synthetic path mirroring the on-disk layout; never opened."""
        if kind not in ("svg", "yaml"):
            raise DatasetError(f"unknown snapshot kind {kind!r}")
        utc = when.astimezone(timezone.utc)
        return (
            self.root
            / map_name.value
            / kind
            / f"{utc.year:04d}"
            / f"{utc.month:02d}"
            / f"{utc.day:02d}"
            / f"{map_name.value}-{format_timestamp(when)}.{kind}"
        )

    def manifest_path(self, map_name: MapName) -> Path:
        """Synthetic manifest path; the in-memory store persists nothing."""
        return self.root / map_name.value / "manifest.json"

    def index_path(self, map_name: MapName) -> Path:
        """Synthetic index path; the in-memory store persists nothing."""
        return self.root / map_name.value / "index.bin"

    def write(self, map_name: MapName, when: datetime, kind: str, data: str | bytes) -> SnapshotRef:
        """Store one snapshot in the dict."""
        if isinstance(data, str):
            data = data.encode("utf-8")
        self._ticks += 1
        self._files[self._key(map_name, when, kind)] = (data, self._ticks)
        return SnapshotRef(
            map_name=map_name,
            timestamp=when.astimezone(timezone.utc),
            kind=kind,
            path=self.path_for(map_name, when, kind),
            size=len(data),
            mtime_ns=self._ticks,
        )

    def read_bytes(self, map_name: MapName, when: datetime, kind: str) -> bytes:
        """Read one stored snapshot's raw contents."""
        try:
            return self._files[self._key(map_name, when, kind)][0]
        except KeyError as exc:
            raise SnapshotNotFoundError(
                f"no {kind} snapshot of {map_name.value} at {when.isoformat()}"
            ) from exc

    def read_ref(self, ref: SnapshotRef) -> bytes:
        """Read the raw contents a :class:`SnapshotRef` points at."""
        return self.read_bytes(ref.map_name, ref.timestamp, ref.kind)

    def iter_refs(self, map_name: MapName, kind: str) -> Iterator[SnapshotRef]:
        """All stored snapshots of one map and kind, in timestamp order."""
        refs: list[SnapshotRef] = []
        for (name, stored_kind, stamp), (data, tick) in self._files.items():
            if name != map_name.value or stored_kind != kind:
                continue
            when = parse_timestamp(stamp)
            refs.append(
                SnapshotRef(
                    map_name=map_name,
                    timestamp=when,
                    kind=kind,
                    path=self.path_for(map_name, when, kind),
                    size=len(data),
                    mtime_ns=tick,
                )
            )
        refs.sort(key=lambda ref: ref.timestamp)
        yield from refs

    def timestamps(self, map_name: MapName, kind: str = "svg") -> list[datetime]:
        """Sorted snapshot timestamps of one map."""
        return [ref.timestamp for ref in self.iter_refs(map_name, kind)]

    def file_stats(self, map_name: MapName, kind: str) -> tuple[int, int]:
        """(file count, total bytes) for one map and kind."""
        count = 0
        total = 0
        for ref in self.iter_refs(map_name, kind):
            count += 1
            total += ref.size_bytes
        return count, total


def dataset_layout(root: str | Path) -> str | None:
    """The layout recorded in ``<root>/layout.json``, if any."""
    marker = Path(root) / LAYOUT_FILE_NAME
    try:
        raw = marker.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None
    try:
        payload = json.loads(raw)
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    layout = payload.get("layout")
    return layout if isinstance(layout, str) else None


def open_store(root: str | Path) -> DatasetStore:
    """Open a dataset directory with the backend its marker names.

    Datasets without a ``layout.json`` (every pre-shard dataset) get the
    flat :class:`DatasetStore`; ``{"layout": "sharded"}`` selects
    :class:`ShardedDatasetStore`. The snapshot tree is identical either
    way, so this only changes which indexes serve reads.
    """
    if dataset_layout(root) == SHARDED_LAYOUT:
        return ShardedDatasetStore(root)
    return DatasetStore(root)
