"""Collection availability model (Figures 2 and 3).

Reproduces the paper's collection history:

* Europe was collected near-continuously from July 2020 with ">99.8 % of
  the snapshots available at the highest resolution of five minutes";
* World, North America and Asia Pacific were collected "between July and
  September 2020 and after October 2021";
* all maps show short gaps — usually a single missing snapshot — whose
  rate drops after the operational fix of May 2022;
* a few longer outages (hours to days) produce the visible discontinuities
  of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone

from repro.constants import (
    COLLECTION_FIX_DATE,
    COLLECTION_START,
    MapName,
    REFERENCE_DATE,
    SNAPSHOT_INTERVAL,
)
from repro.errors import DatasetError
from repro.rng import stable_uniform, substream


@dataclass(frozen=True, slots=True)
class CollectionSegment:
    """A continuous stretch of collection for one map."""

    start: datetime
    end: datetime

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise DatasetError("collection segment is empty")

    def contains(self, when: datetime) -> bool:
        return self.start <= when < self.end


def _utc(year: int, month: int, day: int) -> datetime:
    return datetime(year, month, day, tzinfo=timezone.utc)


#: The paper's per-map collection campaigns.
DEFAULT_SEGMENTS: dict[MapName, tuple[CollectionSegment, ...]] = {
    MapName.EUROPE: (CollectionSegment(COLLECTION_START, REFERENCE_DATE),),
    MapName.WORLD: (
        CollectionSegment(COLLECTION_START, _utc(2020, 9, 20)),
        CollectionSegment(_utc(2021, 10, 5), REFERENCE_DATE),
    ),
    MapName.NORTH_AMERICA: (
        CollectionSegment(COLLECTION_START, _utc(2020, 9, 18)),
        CollectionSegment(_utc(2021, 10, 12), REFERENCE_DATE),
    ),
    MapName.ASIA_PACIFIC: (
        CollectionSegment(COLLECTION_START, _utc(2020, 9, 22)),
        CollectionSegment(_utc(2021, 10, 8), REFERENCE_DATE),
    ),
}


@dataclass(frozen=True)
class AvailabilityModel:
    """Decides, deterministically, whether a snapshot tick was collected."""

    seed: int = 2022
    segments: dict[MapName, tuple[CollectionSegment, ...]] = field(
        default_factory=lambda: dict(DEFAULT_SEGMENTS)
    )
    #: Single-snapshot miss probability for the Europe map (0.2 % of
    #: intervals exceed five minutes in the paper).
    europe_miss_rate: float = 0.0015
    #: Miss probability for the other maps before the May 2022 fix
    #: ("the resolution can be coarser less than 10 % of the time").
    other_miss_rate_before_fix: float = 0.055
    #: Miss probability after the fix ("less short gaps appear ... past
    #: this point").
    other_miss_rate_after_fix: float = 0.008
    #: Probability that any given day starts a long outage, and the
    #: outage length bounds.  Calibrated to a handful of visible
    #: discontinuities over the two-year window, as in Figure 2.
    outage_day_rate: float = 0.004
    outage_min: timedelta = timedelta(hours=2)
    outage_max: timedelta = timedelta(hours=30)

    def segments_for(self, map_name: MapName) -> tuple[CollectionSegment, ...]:
        """The collection campaigns of one map."""
        try:
            return self.segments[map_name]
        except KeyError as exc:
            raise DatasetError(f"no collection segments for {map_name.value}") from exc

    def _miss_rate(self, map_name: MapName, when: datetime) -> float:
        if map_name is MapName.EUROPE:
            return self.europe_miss_rate
        if when >= COLLECTION_FIX_DATE:
            return self.other_miss_rate_after_fix
        return self.other_miss_rate_before_fix

    def _in_outage(self, map_name: MapName, when: datetime) -> bool:
        """Whether a long scripted-ish outage covers ``when``.

        Outage starts are drawn per day (deterministically); a day with an
        outage hides every tick between its start and end.
        """
        # Check this day and the previous day (an outage can span midnight).
        for day_offset in (0, 1):
            day = (when - timedelta(days=day_offset)).date()
            rng = substream("outage", self.seed, map_name.value, day.isoformat())
            if rng.random() >= self.outage_day_rate:
                continue
            start_seconds = rng.uniform(0, 86400)
            length = self.outage_min + (self.outage_max - self.outage_min) * rng.random()
            start = datetime(
                day.year, day.month, day.day, tzinfo=timezone.utc
            ) + timedelta(seconds=start_seconds)
            if start <= when < start + length:
                return True
        return False

    def is_collected(self, map_name: MapName, when: datetime) -> bool:
        """Whether the snapshot at ``when`` made it into the dataset."""
        if not any(segment.contains(when) for segment in self.segments_for(map_name)):
            return False
        if self._in_outage(map_name, when):
            return False
        miss_rate = self._miss_rate(map_name, when)
        return stable_uniform("miss", self.seed, map_name.value, when) >= miss_rate

    def ticks(
        self,
        map_name: MapName,
        start: datetime,
        end: datetime,
        interval: timedelta = SNAPSHOT_INTERVAL,
    ) -> list[datetime]:
        """Collected snapshot times for one map within [start, end)."""
        collected: list[datetime] = []
        current = start
        while current < end:
            if self.is_collected(map_name, current):
                collected.append(current)
            current += interval
        return collected
