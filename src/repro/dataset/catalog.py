"""Dataset catalog: what was collected, when, with what gaps.

Backs the two collection-quality figures:

* **Figure 2** — per-map collected time frames: maximal segments in which
  consecutive snapshots are no farther apart than a threshold;
* **Figure 3** — the distribution of time distances between consecutive
  snapshots of each map.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

import numpy

from repro.constants import MapName, SNAPSHOT_INTERVAL
from repro.dataset.store import DatasetStore


@dataclass(frozen=True, slots=True)
class TimeFrame:
    """A maximal continuous stretch of collected snapshots."""

    start: datetime
    end: datetime
    snapshot_count: int

    @property
    def duration(self) -> timedelta:
        return self.end - self.start


def time_frames_from(
    stamps: list[datetime], max_gap: timedelta = timedelta(hours=1)
) -> list[TimeFrame]:
    """Maximal collection segments from a sorted timestamp list.

    Store-free building block for Figure 2: usable directly on an
    availability model's tick list as well as on a catalog's index.
    """
    if not stamps:
        return []
    frames: list[TimeFrame] = []
    segment_start = stamps[0]
    previous = stamps[0]
    count = 1
    for stamp in stamps[1:]:
        if stamp - previous > max_gap:
            frames.append(
                TimeFrame(start=segment_start, end=previous, snapshot_count=count)
            )
            segment_start = stamp
            count = 0
        previous = stamp
        count += 1
    frames.append(TimeFrame(start=segment_start, end=previous, snapshot_count=count))
    return frames


class DatasetCatalog:
    """Index over one dataset store's snapshot timestamps."""

    def __init__(self, store: DatasetStore, kind: str = "svg") -> None:
        self._store = store
        self._kind = kind
        self._timestamps: dict[MapName, list[datetime]] = {}

    def timestamps(self, map_name: MapName) -> list[datetime]:
        """Sorted snapshot timestamps of one map (cached)."""
        cached = self._timestamps.get(map_name)
        if cached is None:
            cached = self._store.timestamps(map_name, self._kind)
            self._timestamps[map_name] = cached
        return cached

    def snapshot_count(self, map_name: MapName) -> int:
        """Number of collected snapshots for one map."""
        return len(self.timestamps(map_name))

    def distances(self, map_name: MapName) -> numpy.ndarray:
        """Seconds between consecutive snapshots (Figure 3's variable)."""
        stamps = self.timestamps(map_name)
        if len(stamps) < 2:
            return numpy.empty(0)
        seconds = numpy.array([stamp.timestamp() for stamp in stamps])
        return numpy.diff(seconds)

    def distance_cdf(self, map_name: MapName) -> tuple[numpy.ndarray, numpy.ndarray]:
        """(distance seconds, cumulative fraction) — one Figure 3 series."""
        distances = numpy.sort(self.distances(map_name))
        if distances.size == 0:
            return numpy.empty(0), numpy.empty(0)
        fractions = numpy.arange(1, distances.size + 1) / distances.size
        return distances, fractions

    def fraction_at_resolution(
        self, map_name: MapName, resolution: timedelta = SNAPSHOT_INTERVAL
    ) -> float:
        """Fraction of inter-snapshot distances at the nominal resolution.

        The paper reports >99.8 % for the Europe map at five minutes.
        """
        distances = self.distances(map_name)
        if distances.size == 0:
            return 0.0
        return float(
            numpy.mean(distances <= resolution.total_seconds() + 1.0)
        )

    def time_frames(
        self,
        map_name: MapName,
        max_gap: timedelta = timedelta(hours=1),
    ) -> list[TimeFrame]:
        """Maximal collection segments, split wherever a gap exceeds
        ``max_gap`` (the Figure 2 bars)."""
        return time_frames_from(self.timestamps(map_name), max_gap)
