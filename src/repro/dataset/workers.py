"""Worker-count resolution shared by the CLI and the library API.

BENCH_throughput.json showed the process pool *regressing* on small
machines (``speedup_load = 0.84`` with one core): spawning workers,
pickling results, and re-importing the library costs more than the
parallelism returns when there is nothing to run in parallel with.  Every
pool user therefore resolves its worker request through
:func:`resolve_workers`, which collapses to serial execution whenever the
effective width is one — including any request on a single-core machine.
"""

from __future__ import annotations

import os

from repro.errors import WorkerCountError

#: The sentinel accepted everywhere a worker count is: one worker per core.
AUTO_WORKERS = "auto"


def default_workers() -> int:
    """The default fan-out: one worker per available core."""
    return max(1, os.cpu_count() or 1)


def resolve_workers(workers: int | str | None, default: int | str = 1) -> int:
    """Resolve a worker request to the count of workers actually worth using.

    Args:
        workers: ``None`` (take ``default``), ``"auto"`` or ``0`` (one per
            CPU core), or an explicit positive count.
        default: what ``None`` means for this call site — ``1`` for the
            loaders (serial unless asked), ``"auto"`` for the bulk engine.

    Returns:
        The effective worker count.  Always ``1`` on a single-core machine,
        whatever was requested: the pool cannot win there, so callers skip
        it entirely.

    Raises:
        WorkerCountError: for counts below 1 (other than the ``0`` /
            ``"auto"`` sentinel), non-integral counts, or unrecognised
            strings.  Also a :class:`ValueError`, so argument-validating
            callers catch it naturally.  A negative count must never
            reach :class:`~concurrent.futures.ProcessPoolExecutor`,
            which would only reject it with an opaque message — or,
            after a ``min()`` against a batch count, silently spawn the
            wrong pool.
    """
    if workers is None:
        workers = default
    if isinstance(workers, str):
        if workers != AUTO_WORKERS:
            raise WorkerCountError(
                f"workers must be a count, 0, or {AUTO_WORKERS!r}; got {workers!r}"
            )
        workers = 0
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise WorkerCountError(
            f"workers must be an int, 0, or {AUTO_WORKERS!r}; got {workers!r}"
        )
    if workers < 0:
        raise WorkerCountError(
            f"workers must be >= 1 (0 or {AUTO_WORKERS!r} = one per CPU core), "
            f"got {workers}"
        )
    cpus = os.cpu_count() or 1
    if workers == 0:
        workers = cpus
    if cpus <= 1:
        return 1
    return workers
