"""Columnar on-disk snapshot index — parse each map's YAML series once.

The paper's Section 5 analyses re-read an entire map's ~174k YAML
snapshots per figure.  At the measured serial rate that is hours of YAML
parsing repeated for every figure, so this module compacts a map's
processed series into one binary file the analyses can be served from —
the same move time-series databases make when they compact write-ahead
samples into immutable columnar blocks.

Layout of ``<root>/<map>/index.bin``::

    magic "RWIX" | format version | header length      (struct, fixed)
    header                                             (JSON, small)
    columns                                            (array module dumps)
    SHA-256 over everything above                      (32 bytes)

The header carries the format version's companion metadata: map name,
:data:`~repro.parsing.pipeline.PARSER_VERSION` at build time, byte order,
the interned **string tables** (router/peering names and link-end labels),
the per-section element counts, any *skipped* sources (unreadable YAML
files, kept so the index can still answer for a corpus with corrupt
members), and a fingerprint of the source files' ``(timestamp, size,
mtime_ns)`` stats.

The columns are flat :mod:`array` dumps, one per field, in file order:

========================  ======  =====================================
column                    type    one element per
========================  ======  =====================================
``timestamps``            ``q``   snapshot (epoch seconds, UTC)
``source_sizes``          ``q``   snapshot (YAML file size)
``source_mtimes``         ``q``   snapshot (YAML file mtime_ns)
``router_counts``         ``I``   snapshot
``peering_counts``        ``I``   snapshot
``link_counts``           ``I``   snapshot
``router_ids``            ``I``   router membership (concatenated)
``peering_ids``           ``I``   peering membership (concatenated)
``link_a_nodes``          ``I``   link (concatenated)
``link_a_labels``         ``I``   link
``link_b_nodes``          ``I``   link
``link_b_labels``         ``I``   link
``link_a_loads``          ``d``   link (egress load a→b, percent)
``link_b_loads``          ``d``   link (egress load b→a, percent)
========================  ======  =====================================

Everything is stdlib; floats are stored as binary doubles, so an indexed
load is the *same* ``float`` the YAML parser produced and reconstruction
is exact — :func:`repro.dataset.loader.load_all` returns equal
:class:`~repro.topology.model.MapSnapshot` objects from either path.

Freshness is checked against the live YAML tree (one ``stat()`` per file,
no reads): any added, removed, or modified source makes the index stale
and readers fall back to YAML.  :func:`build_index` is incremental the
same way the engine's ``manifest.json`` is — unchanged rows are carried
over wholesale, only new or modified files are parsed — and the index is
discarded outright on ``rebuild=True`` or a ``PARSER_VERSION`` bump.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import logging
import struct
import sys
from array import array
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from datetime import datetime, timezone
from itertools import accumulate
from pathlib import Path
from time import perf_counter
from typing import Callable, Iterator, Sequence

from repro.constants import MapName
from repro.dataset.store import DatasetStore, SnapshotRef, atomic_write_bytes
from repro.dataset.workers import resolve_workers
from repro.errors import SchemaError, SnapshotIndexError
from repro.parsing.pipeline import PARSER_VERSION
from repro.telemetry import get_registry
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node, NodeKind
from repro.yamlio.deserialize import snapshot_from_yaml

logger = logging.getLogger(__name__)

INDEX_MAGIC = b"RWIX"
INDEX_FORMAT_VERSION = 1

_PREFIX = struct.Struct("<4sII")  # magic, format version, header byte length
_DIGEST_BYTES = 32

#: (column attribute, array typecode) in file order.
_COLUMNS: tuple[tuple[str, str], ...] = (
    ("timestamps", "q"),
    ("source_sizes", "q"),
    ("source_mtimes", "q"),
    ("router_counts", "I"),
    ("peering_counts", "I"),
    ("link_counts", "I"),
    ("router_ids", "I"),
    ("peering_ids", "I"),
    ("link_a_nodes", "I"),
    ("link_a_labels", "I"),
    ("link_b_nodes", "I"),
    ("link_b_labels", "I"),
    ("link_a_loads", "d"),
    ("link_b_loads", "d"),
)


def _epoch(when: datetime) -> int:
    """Epoch seconds of a snapshot timestamp (always whole seconds)."""
    return int(when.timestamp())


@dataclass(frozen=True, slots=True)
class ColumnSpec:
    """Where one column's elements sit inside an ``index.bin`` file."""

    attribute: str
    typecode: str
    itemsize: int
    offset: int
    count: int

    @property
    def end(self) -> int:
        """Byte offset one past the column's last element."""
        return self.offset + self.count * self.itemsize


@dataclass(frozen=True)
class IndexLayout:
    """The byte layout of one ``index.bin`` — the mapping contract.

    This is what lets :mod:`repro.dataset.query` expose the columns as
    zero-copy views over a shared read-only mapping: every column's byte
    span is known from the prefix and JSON header alone, so no column
    data needs to be read (or copied) to locate any other.  The same
    parse backs :meth:`SnapshotIndex.load`, which *does* then copy the
    spans into :mod:`array` columns.
    """

    map_name: MapName
    parser_version: int
    byteorder: str
    names: list[str]
    labels: list[str]
    skipped: dict[int, SkippedSource]
    fingerprint: str
    #: attribute → spec, in file order.
    columns: dict[str, ColumnSpec]
    #: Bytes covered by the trailing SHA-256 (prefix + header + columns).
    payload_length: int


def parse_index_layout(buffer, source: str = "index") -> IndexLayout:
    """Parse an index file's prefix and header into its byte layout.

    Args:
        buffer: the whole file as any buffer object (``bytes``,
            ``memoryview``, ``mmap``) — only the prefix and header bytes
            are materialised, never the columns.
        source: how to name the file in error messages.

    Raises:
        SnapshotIndexError: truncation, bad magic, unknown format
            version, a malformed header, or column spans that do not
            tile the payload exactly.
    """
    view = memoryview(buffer)
    if len(view) < _PREFIX.size + _DIGEST_BYTES:
        raise SnapshotIndexError(f"index {source} is truncated")
    magic, version, header_length = _PREFIX.unpack_from(view)
    if magic != INDEX_MAGIC:
        raise SnapshotIndexError(f"index {source} has bad magic {magic!r}")
    if version != INDEX_FORMAT_VERSION:
        raise SnapshotIndexError(
            f"index {source} has format version {version}, "
            f"expected {INDEX_FORMAT_VERSION}"
        )
    payload_length = len(view) - _DIGEST_BYTES
    offset = _PREFIX.size
    if offset + header_length > payload_length:
        raise SnapshotIndexError(f"index {source} header is truncated")
    try:
        header = json.loads(bytes(view[offset : offset + header_length]))
        map_name = MapName(header["map"])
        parser_version = int(header["parser_version"])
        byteorder = str(header["byteorder"])
        names = [str(name) for name in header["names"]]
        labels = [str(label) for label in header["labels"]]
        counts = header["counts"]
        skipped = {
            int(epoch): SkippedSource(
                size=int(size), mtime_ns=int(mtime_ns), message=str(message)
            )
            for epoch, size, mtime_ns, message in header.get("skipped", [])
        }
        fingerprint = str(header.get("fingerprint", ""))
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotIndexError(f"index {source} has a bad header: {exc}") from exc
    offset += header_length
    columns: dict[str, ColumnSpec] = {}
    for attribute, typecode in _COLUMNS:
        itemsize = array(typecode).itemsize
        try:
            count = int(counts.get(attribute, -1))
        except (TypeError, ValueError) as exc:
            raise SnapshotIndexError(
                f"index {source} has a bad count for {attribute}"
            ) from exc
        span = count * itemsize
        if count < 0 or offset + span > payload_length:
            raise SnapshotIndexError(f"index {source} column {attribute} truncated")
        columns[attribute] = ColumnSpec(
            attribute=attribute,
            typecode=typecode,
            itemsize=itemsize,
            offset=offset,
            count=count,
        )
        offset += span
    if offset != payload_length:
        raise SnapshotIndexError(f"index {source} has trailing bytes")
    return IndexLayout(
        map_name=map_name,
        parser_version=parser_version,
        byteorder=byteorder,
        names=names,
        labels=labels,
        skipped=skipped,
        fingerprint=fingerprint,
        columns=columns,
        payload_length=payload_length,
    )


def covers_refs(index, refs: Sequence[SnapshotRef]) -> bool:
    """Whether an index-shaped object exactly covers the given YAML refs.

    Shared freshness walk for :class:`SnapshotIndex` and the query
    engine's :class:`~repro.dataset.query.MappedIndex`: ``index`` only
    needs ``timestamps`` / ``source_sizes`` / ``source_mtimes`` columns
    and the ``skipped`` mapping.  Every ref must appear — as an indexed
    row or a recorded skip — with a matching ``(size, mtime_ns)``, and
    the index must contain nothing else.  One ``stat()`` per file, no
    reads.
    """
    timestamps = index.timestamps
    sizes = index.source_sizes
    mtimes = index.source_mtimes
    indexed = {
        timestamps[row]: (sizes[row], mtimes[row])
        for row in range(len(timestamps))
    }
    seen = 0
    for ref in refs:
        seen += 1
        try:
            stat = ref.path.stat()
        except OSError:
            return False
        key = _epoch(ref.timestamp)
        expected = indexed.get(key)
        if expected is not None:
            if expected != (stat.st_size, stat.st_mtime_ns):
                return False
            continue
        skip = index.skipped.get(key)
        if (
            skip is None
            or skip.size != stat.st_size
            or skip.mtime_ns != stat.st_mtime_ns
        ):
            return False
    return seen == len(indexed) + len(index.skipped)


def _when(epoch: int) -> datetime:
    """Inverse of :func:`_epoch`, always UTC-aware."""
    return datetime.fromtimestamp(epoch, tz=timezone.utc)


@dataclass(frozen=True, slots=True)
class SkippedSource:
    """A source YAML file the index could not parse, remembered by stat.

    Keeping these lets the index stay *fresh* for a corpus that contains
    corrupt members: the reader replays the recorded failure exactly where
    the YAML path would have hit it.
    """

    size: int
    mtime_ns: int
    message: str


class SnapshotIndex:
    """One map's snapshot series in columnar, interned form."""

    timestamps: array
    source_sizes: array
    source_mtimes: array
    router_counts: array
    peering_counts: array
    link_counts: array
    router_ids: array
    peering_ids: array
    link_a_nodes: array
    link_a_labels: array
    link_b_nodes: array
    link_b_labels: array
    link_a_loads: array
    link_b_loads: array

    def __init__(
        self, map_name: MapName, parser_version: int = PARSER_VERSION
    ) -> None:
        self.map_name = map_name
        self.parser_version = parser_version
        self.names: list[str] = []
        self.labels: list[str] = []
        #: Unreadable sources by epoch second, part of the indexed universe.
        self.skipped: dict[int, SkippedSource] = {}
        for attribute, typecode in _COLUMNS:
            setattr(self, attribute, array(typecode))
        self._name_ids: dict[str, int] = {}
        self._label_ids: dict[str, int] = {}
        self._offsets: tuple[list[int], list[int], list[int]] | None = None
        self._node_cache: dict[tuple[int, NodeKind], Node] = {}
        self._link_cache: dict[tuple[int, int, float, int, int, float], Link] = {}

    # -- building ----------------------------------------------------------

    def _intern_name(self, name: str) -> int:
        index = self._name_ids.get(name)
        if index is None:
            index = self._name_ids[name] = len(self.names)
            self.names.append(name)
        return index

    def _intern_label(self, label: str) -> int:
        index = self._label_ids.get(label)
        if index is None:
            index = self._label_ids[label] = len(self.labels)
            self.labels.append(label)
        return index

    def adopt_tables(self, other: "SnapshotIndex") -> None:
        """Share another index's string tables (prefix-compatible ids).

        Required before :meth:`append_row_from` so the donor's ids stay
        valid verbatim; only callable on an empty index.
        """
        if len(self) or self.names or self.labels:
            raise SnapshotIndexError("can only adopt tables into an empty index")
        self.names = list(other.names)
        self.labels = list(other.labels)
        self._name_ids = {name: i for i, name in enumerate(self.names)}
        self._label_ids = {label: i for i, label in enumerate(self.labels)}

    def append_snapshot(self, snapshot: MapSnapshot, size: int, mtime_ns: int) -> None:
        """Intern and append one parsed snapshot (rows stay in time order)."""
        self.timestamps.append(_epoch(snapshot.timestamp))
        self.source_sizes.append(size)
        self.source_mtimes.append(mtime_ns)
        routers = peerings = 0
        for node in snapshot.nodes.values():
            if node.kind is NodeKind.ROUTER:
                self.router_ids.append(self._intern_name(node.name))
                routers += 1
            else:
                self.peering_ids.append(self._intern_name(node.name))
                peerings += 1
        self.router_counts.append(routers)
        self.peering_counts.append(peerings)
        self.link_counts.append(len(snapshot.links))
        for link in snapshot.links:
            self.link_a_nodes.append(self._intern_name(link.a.node))
            self.link_a_labels.append(self._intern_label(link.a.label))
            self.link_b_nodes.append(self._intern_name(link.b.node))
            self.link_b_labels.append(self._intern_label(link.b.label))
            self.link_a_loads.append(link.a.load)
            self.link_b_loads.append(link.b.load)
        self._offsets = None

    def append_row_from(self, other: "SnapshotIndex", row: int) -> None:
        """Carry one unchanged row over from a previous index generation.

        The string tables must have been adopted from ``other`` (ids are
        copied verbatim, not re-interned) — that is what makes the reuse
        path pure array slicing with no YAML and no hashing.
        """
        r0, r1, p0, p1, l0, l1 = other._row_bounds(row)
        self.timestamps.append(other.timestamps[row])
        self.source_sizes.append(other.source_sizes[row])
        self.source_mtimes.append(other.source_mtimes[row])
        self.router_counts.append(r1 - r0)
        self.peering_counts.append(p1 - p0)
        self.link_counts.append(l1 - l0)
        self.router_ids.extend(other.router_ids[r0:r1])
        self.peering_ids.extend(other.peering_ids[p0:p1])
        self.link_a_nodes.extend(other.link_a_nodes[l0:l1])
        self.link_a_labels.extend(other.link_a_labels[l0:l1])
        self.link_b_nodes.extend(other.link_b_nodes[l0:l1])
        self.link_b_labels.extend(other.link_b_labels[l0:l1])
        self.link_a_loads.extend(other.link_a_loads[l0:l1])
        self.link_b_loads.extend(other.link_b_loads[l0:l1])
        self._offsets = None

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    def _row_bounds(self, row: int) -> tuple[int, int, int, int, int, int]:
        if self._offsets is None:
            self._offsets = (
                [0, *accumulate(self.router_counts)],
                [0, *accumulate(self.peering_counts)],
                [0, *accumulate(self.link_counts)],
            )
        routers, peerings, links = self._offsets
        return (
            routers[row],
            routers[row + 1],
            peerings[row],
            peerings[row + 1],
            links[row],
            links[row + 1],
        )

    def _node(self, name_id: int, kind: NodeKind) -> Node:
        node = self._node_cache.get((name_id, kind))
        if node is None:
            node = Node(name=self.names[name_id], kind=kind)
            self._node_cache[(name_id, kind)] = node
        return node

    def timestamp_at(self, row: int) -> datetime:
        """The snapshot timestamp of one row."""
        return _when(self.timestamps[row])

    def snapshot(self, row: int) -> MapSnapshot:
        """Reconstruct one row as a full :class:`MapSnapshot`.

        The result is equal to parsing the row's source YAML file: names
        and labels come back from the string tables, loads from the double
        columns, and node kinds from which id-list the node sat in.
        """
        r0, r1, p0, p1, l0, l1 = self._row_bounds(row)
        names = self.names
        labels = self.labels
        nodes: dict[str, Node] = {}
        for name_id in self.router_ids[r0:r1]:
            nodes[names[name_id]] = self._node(name_id, NodeKind.ROUTER)
        for name_id in self.peering_ids[p0:p1]:
            nodes[names[name_id]] = self._node(name_id, NodeKind.PEERING)
        # Identical (endpoints, labels, loads) combinations recur constantly
        # across a series — loads are small percentages — so immutable Link
        # objects are shared between reconstructed snapshots.
        cache = self._link_cache
        if len(cache) > 1 << 20:
            cache.clear()
        links: list[Link] = []
        for j in range(l0, l1):
            key = (
                self.link_a_nodes[j],
                self.link_a_labels[j],
                self.link_a_loads[j],
                self.link_b_nodes[j],
                self.link_b_labels[j],
                self.link_b_loads[j],
            )
            link = cache.get(key)
            if link is None:
                link = cache[key] = Link(
                    a=LinkEnd(node=names[key[0]], label=labels[key[1]], load=key[2]),
                    b=LinkEnd(node=names[key[3]], label=labels[key[4]], load=key[5]),
                )
            links.append(link)
        # Bypass add_node/add_link: rows were validated when first parsed.
        return MapSnapshot(
            map_name=self.map_name,
            timestamp=_when(self.timestamps[row]),
            nodes=nodes,
            links=links,
        )

    def rows_in_window(
        self, start: datetime | None = None, end: datetime | None = None
    ) -> range:
        """Row indices whose timestamps fall inside ``[start, end)``."""
        lo = 0 if start is None else bisect.bisect_left(self.timestamps, _epoch(start))
        hi = (
            len(self.timestamps)
            if end is None
            else bisect.bisect_left(self.timestamps, _epoch(end))
        )
        return range(lo, hi)

    def iter_snapshots(
        self, start: datetime | None = None, end: datetime | None = None
    ) -> Iterator[MapSnapshot]:
        """Reconstructed snapshots in time order, optionally windowed."""
        for row in self.rows_in_window(start, end):
            yield self.snapshot(row)

    # -- freshness ---------------------------------------------------------

    def source_fingerprint(self) -> str:
        """SHA-256 over the indexed universe's ``(epoch, size, mtime_ns)``."""
        digest = hashlib.sha256()
        for row in range(len(self)):
            digest.update(
                b"row %d %d %d;"
                % (self.timestamps[row], self.source_sizes[row], self.source_mtimes[row])
            )
        for epoch in sorted(self.skipped):
            entry = self.skipped[epoch]
            digest.update(b"skip %d %d %d;" % (epoch, entry.size, entry.mtime_ns))
        return digest.hexdigest()

    def fresh_for(self, refs: Sequence[SnapshotRef]) -> bool:
        """Whether this index exactly covers the given YAML refs.

        Every ref must appear — as an indexed row or a recorded skip —
        with a matching ``(size, mtime_ns)``, and the index must contain
        nothing else.  One ``stat()`` per file, no reads.
        """
        return covers_refs(self, refs)

    # -- serialisation -----------------------------------------------------

    def save(self, path: Path) -> int:
        """Write the index atomically; returns the byte count."""
        header = {
            "map": self.map_name.value,
            "parser_version": self.parser_version,
            "byteorder": sys.byteorder,
            "names": self.names,
            "labels": self.labels,
            "counts": {
                attribute: len(getattr(self, attribute))
                for attribute, _ in _COLUMNS
            },
            "skipped": [
                [epoch, entry.size, entry.mtime_ns, entry.message]
                for epoch, entry in sorted(self.skipped.items())
            ],
            "fingerprint": self.source_fingerprint(),
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        parts = [_PREFIX.pack(INDEX_MAGIC, INDEX_FORMAT_VERSION, len(header_bytes))]
        parts.append(header_bytes)
        for attribute, _ in _COLUMNS:
            parts.append(getattr(self, attribute).tobytes())
        payload = b"".join(parts)
        data = payload + hashlib.sha256(payload).digest()
        # Write-aside + fsync + replace: a mid-write kill leaves either the
        # previous index generation or the new one, never a truncated file.
        return atomic_write_bytes(path, data)

    @classmethod
    def load(cls, path: Path) -> "SnapshotIndex":
        """Read an index file back, verifying integrity end to end.

        Raises:
            SnapshotIndexError: missing file, bad magic, unknown format
                version, checksum mismatch, truncation, or inconsistent
                section counts — callers treat all of these as "no index".
        """
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise SnapshotIndexError(f"cannot read index {path}: {exc}") from exc
        if len(data) < _PREFIX.size + _DIGEST_BYTES:
            raise SnapshotIndexError(f"index {path} is truncated")
        payload, digest = data[:-_DIGEST_BYTES], data[-_DIGEST_BYTES:]
        if hashlib.sha256(payload).digest() != digest:
            raise SnapshotIndexError(f"index {path} fails its checksum")
        layout = parse_index_layout(data, source=str(path))
        index = cls(layout.map_name, parser_version=layout.parser_version)
        index.names = layout.names
        index.labels = layout.labels
        index.skipped = dict(layout.skipped)
        swap = layout.byteorder != sys.byteorder
        for spec in layout.columns.values():
            column: array = getattr(index, spec.attribute)
            column.frombytes(payload[spec.offset : spec.end])
            if swap:
                column.byteswap()
        index._name_ids = {name: i for i, name in enumerate(index.names)}
        index._label_ids = {label: i for i, label in enumerate(index.labels)}
        index._validate()
        return index

    def _validate(self) -> None:
        """Cross-check section lengths and id bounds after a load."""
        rows = len(self.timestamps)
        for attribute in ("source_sizes", "source_mtimes", "router_counts",
                          "peering_counts", "link_counts"):
            if len(getattr(self, attribute)) != rows:
                raise SnapshotIndexError(f"column {attribute} length mismatch")
        if len(self.router_ids) != sum(self.router_counts):
            raise SnapshotIndexError("router id column length mismatch")
        if len(self.peering_ids) != sum(self.peering_counts):
            raise SnapshotIndexError("peering id column length mismatch")
        links = sum(self.link_counts)
        for attribute in ("link_a_nodes", "link_a_labels", "link_b_nodes",
                          "link_b_labels", "link_a_loads", "link_b_loads"):
            if len(getattr(self, attribute)) != links:
                raise SnapshotIndexError(f"column {attribute} length mismatch")
        names = len(self.names)
        labels = len(self.labels)
        for column, bound in (
            (self.router_ids, names),
            (self.peering_ids, names),
            (self.link_a_nodes, names),
            (self.link_b_nodes, names),
            (self.link_a_labels, labels),
            (self.link_b_labels, labels),
        ):
            if len(column) and max(column) >= bound:
                raise SnapshotIndexError("interned id out of table bounds")
        if any(b < a for a, b in zip(self.timestamps, self.timestamps[1:])):
            raise SnapshotIndexError("timestamp column is not sorted")


# ---------------------------------------------------------------------------
# Build / load / status
# ---------------------------------------------------------------------------


@dataclass
class IndexBuildStats:
    """What one :func:`build_index` run did."""

    map_name: MapName
    parsed: int = 0
    reused: int = 0
    unreadable: int = 0
    removed: int = 0
    bytes_written: int = 0

    @property
    def total(self) -> int:
        """Rows in the resulting index."""
        return self.parsed + self.reused


def load_index(store: DatasetStore, map_name: MapName) -> SnapshotIndex | None:
    """Read a map's index if one exists and is sound; ``None`` otherwise."""
    return load_index_at(store.index_path(map_name), map_name)


def load_index_at(path: Path, map_name: MapName) -> SnapshotIndex | None:
    """Read an index file (monolithic or per-shard) if it is sound."""
    if not path.exists():
        return None
    try:
        with get_registry().span(
            "repro_index_load", "Columnar index file load wall time",
            map=map_name.value,
        ):
            index = SnapshotIndex.load(path)
    except SnapshotIndexError as exc:
        logger.warning("ignoring unusable snapshot index: %s", exc)
        return None
    if index.map_name != map_name:
        logger.warning(
            "index %s claims map %s; ignoring", path, index.map_name.value
        )
        return None
    return index


def fresh_index(store: DatasetStore, map_name: MapName) -> SnapshotIndex | None:
    """The map's index, but only if it exactly matches the live YAML tree.

    Stale, corrupt, absent, or parser-version-skewed indexes all come back
    as ``None`` — the caller falls back to parsing YAML.  Every call
    lands in ``repro_index_cache_total{map,outcome}`` as a hit (fresh
    index served) or a miss (any fallback-to-YAML reason).
    """
    cache = get_registry().counter(
        "repro_index_cache_total",
        "Snapshot-index freshness checks by outcome (hit = index served)",
    )
    index = load_index(store, map_name)
    if index is None:
        cache.inc(1, map=map_name.value, outcome="miss")
        return None
    if index.parser_version != PARSER_VERSION:
        logger.info(
            "index for %s built at parser version %d (current %d); ignoring",
            map_name.value,
            index.parser_version,
            PARSER_VERSION,
        )
        cache.inc(1, map=map_name.value, outcome="miss")
        return None
    if not index.fresh_for(list(store.iter_refs(map_name, "yaml"))):
        cache.inc(1, map=map_name.value, outcome="miss")
        return None
    cache.inc(1, map=map_name.value, outcome="hit")
    return index


def _parse_source(path: str) -> tuple[MapSnapshot | None, str]:
    """Pool worker: one YAML file → (snapshot, "") or (None, error text)."""
    try:
        return snapshot_from_yaml(Path(path).read_text(encoding="utf-8")), ""
    except SchemaError as exc:
        return None, str(exc)


def build_index(
    store: DatasetStore,
    map_name: MapName,
    rebuild: bool = False,
    workers: int | str | None = None,
    on_error: Callable[[SnapshotRef, SchemaError], None] | None = None,
    parser_version: int = PARSER_VERSION,
    *,
    refs: Sequence[SnapshotRef] | None = None,
    index_path: Path | None = None,
) -> tuple[SnapshotIndex, IndexBuildStats]:
    """Build or refresh one map's columnar index from its YAML series.

    Incremental by default: rows whose source file is unchanged (same
    ``size`` and ``mtime_ns``) are carried over from the existing index
    without touching the YAML; new and modified files are parsed (over a
    process pool when ``workers`` asks for one); rows whose source
    vanished are dropped.  An existing index built at a different
    ``PARSER_VERSION`` is discarded, mirroring the engine's manifest.

    Args:
        rebuild: ignore any existing index and parse everything.
        workers: worker request, resolved via
            :func:`repro.dataset.workers.resolve_workers` (default serial).
        on_error: called for unreadable YAML files, which are recorded as
            skipped sources; without a handler, schema errors propagate.
        refs: the source universe to index; defaults to every YAML ref of
            the map.  Shard compaction passes one shard's refs here.
        index_path: where to load the previous generation from and save
            the result; defaults to the map's monolithic index path.
            Shard compaction passes the per-shard path.

    Returns:
        The saved index and the build accounting.
    """
    registry = get_registry()
    rows_counter = registry.counter(
        "repro_index_rows_total",
        "Index build rows by outcome (parsed, reused, unreadable, removed)",
    )
    build_seconds = registry.histogram(
        "repro_index_build_seconds", "Index build wall time"
    )
    build_started = perf_counter()
    if refs is None:
        refs = list(store.iter_refs(map_name, "yaml"))
    if index_path is None:
        index_path = store.index_path(map_name)
    previous: SnapshotIndex | None = None
    if not rebuild:
        previous = load_index_at(index_path, map_name)
        if previous is not None and previous.parser_version != parser_version:
            logger.info(
                "discarding index for %s (parser version %d -> %d)",
                map_name.value,
                previous.parser_version,
                parser_version,
            )
            previous = None

    stats = IndexBuildStats(map_name=map_name)
    index = SnapshotIndex(map_name, parser_version)
    previous_rows: dict[int, int] = {}
    if previous is not None:
        index.adopt_tables(previous)
        previous_rows = {
            previous.timestamps[row]: row for row in range(len(previous))
        }

    # Plan in ref (time) order: reuse an unchanged row, or parse the file.
    plan: list[tuple[SnapshotRef, int | None]] = []
    to_parse: list[SnapshotRef] = []
    stats_by_ref: dict[int, tuple[int, int]] = {}
    for ref in refs:
        try:
            stat = ref.path.stat()
        except OSError:
            continue  # raced with deletion; the index simply omits it
        key = _epoch(ref.timestamp)
        stats_by_ref[key] = (stat.st_size, stat.st_mtime_ns)
        row = previous_rows.get(key)
        if row is not None and previous is not None and (
            previous.source_sizes[row] == stat.st_size
            and previous.source_mtimes[row] == stat.st_mtime_ns
        ):
            plan.append((ref, row))
            continue
        skip = previous.skipped.get(key) if previous is not None else None
        if (
            skip is not None
            and skip.size == stat.st_size
            and skip.mtime_ns == stat.st_mtime_ns
        ):
            index.skipped[key] = skip
            stats.unreadable += 1
            continue
        plan.append((ref, None))
        to_parse.append(ref)

    parsed: dict[int, tuple[MapSnapshot | None, str]] = {}
    effective_workers = resolve_workers(workers)
    if to_parse and effective_workers > 1:
        chunksize = max(1, len(to_parse) // (effective_workers * 4))
        with ProcessPoolExecutor(
            max_workers=min(effective_workers, len(to_parse))
        ) as executor:
            for ref, outcome in zip(
                to_parse,
                executor.map(
                    _parse_source,
                    [str(ref.path) for ref in to_parse],
                    chunksize=chunksize,
                ),
            ):
                parsed[_epoch(ref.timestamp)] = outcome
    else:
        for ref in to_parse:
            parsed[_epoch(ref.timestamp)] = _parse_source(str(ref.path))

    for ref, previous_row in plan:
        key = _epoch(ref.timestamp)
        size, mtime_ns = stats_by_ref[key]
        if previous_row is not None:
            index.append_row_from(previous, previous_row)
            stats.reused += 1
            continue
        snapshot, message = parsed[key]
        if snapshot is None:
            exc = SchemaError(message)
            if on_error is None:
                raise exc
            on_error(ref, exc)
            index.skipped[key] = SkippedSource(
                size=size, mtime_ns=mtime_ns, message=message
            )
            stats.unreadable += 1
            continue
        snapshot.timestamp = ref.timestamp
        index.append_snapshot(snapshot, size, mtime_ns)
        stats.parsed += 1

    if previous is not None:
        stats.removed = max(0, len(previous) - stats.reused)
    stats.bytes_written = index.save(index_path)
    build_seconds.observe(perf_counter() - build_started, map=map_name.value)
    for outcome in ("parsed", "reused", "unreadable", "removed"):
        rows_counter.inc(getattr(stats, outcome), map=map_name.value, outcome=outcome)
    logger.info(
        "indexed %s: %d rows (%d parsed, %d reused, %d unreadable, %d removed)",
        map_name.value,
        len(index),
        stats.parsed,
        stats.reused,
        stats.unreadable,
        stats.removed,
    )
    return index, stats


@dataclass(frozen=True)
class IndexStatus:
    """What ``repro-weather index status`` reports for one map."""

    map_name: MapName
    path: Path
    exists: bool
    fresh: bool
    rows: int
    skipped: int
    names: int
    labels: int
    size_bytes: int
    parser_version: int | None
    fingerprint: str | None
    reason: str | None


def index_status(store: DatasetStore, map_name: MapName) -> IndexStatus:
    """Inspect one map's index without touching any YAML content."""
    path = store.index_path(map_name)
    if not path.exists():
        return IndexStatus(
            map_name=map_name, path=path, exists=False, fresh=False, rows=0,
            skipped=0, names=0, labels=0, size_bytes=0, parser_version=None,
            fingerprint=None, reason="no index file",
        )
    try:
        index = SnapshotIndex.load(path)
    except SnapshotIndexError as exc:
        return IndexStatus(
            map_name=map_name, path=path, exists=True, fresh=False, rows=0,
            skipped=0, names=0, labels=0, size_bytes=path.stat().st_size,
            parser_version=None, fingerprint=None, reason=str(exc),
        )
    reason: str | None = None
    fresh = False
    if index.map_name != map_name:
        reason = f"index claims map {index.map_name.value!r}"
    elif index.parser_version != PARSER_VERSION:
        reason = (
            f"built at parser version {index.parser_version}, "
            f"current is {PARSER_VERSION}"
        )
    elif not index.fresh_for(list(store.iter_refs(map_name, "yaml"))):
        reason = "source YAML files changed since the index was built"
    else:
        fresh = True
    return IndexStatus(
        map_name=map_name,
        path=path,
        exists=True,
        fresh=fresh,
        rows=len(index),
        skipped=len(index.skipped),
        names=len(index.names),
        labels=len(index.labels),
        size_bytes=path.stat().st_size,
        parser_version=index.parser_version,
        fingerprint=index.source_fingerprint(),
        reason=reason,
    )
