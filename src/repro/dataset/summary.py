"""Table builders: the paper's Table 1 and Table 2.

Table 1 summarises routers / internal links / external links per map on a
reference date, with a total row that counts routers appearing on several
maps only once.  Table 2 summarises collected (SVG) and processed (YAML)
file counts and sizes per map.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.constants import MapName
from repro.dataset.processor import ProcessingStats
from repro.dataset.store import DatasetStore
from repro.topology.model import MapSnapshot

_GIB = 1024.0**3


@dataclass(frozen=True, slots=True)
class Table1Row:
    """One map's row in Table 1."""

    map_name: MapName | None  # None for the total row
    routers: int
    internal_links: int
    external_links: int

    @property
    def title(self) -> str:
        return self.map_name.title if self.map_name is not None else "Total"


def _link_signature(link) -> tuple:
    """Global identity of a physical link: endpoints plus end labels.

    Shared gateway links appear on several maps with the same endpoints
    and labels; counting signatures once reproduces the paper's total row
    (1,323 per-map internal links de-duplicate to 1,186).
    """
    return tuple(
        sorted(((link.a.node, link.a.label), (link.b.node, link.b.label)))
    )


def build_table1(snapshots: dict[MapName, MapSnapshot]) -> list[Table1Row]:
    """Build Table 1 from one snapshot per map.

    The total row "takes into account routers appearing simultaneously in
    several maps": both routers and the links among shared routers are
    counted once.
    """
    rows: list[Table1Row] = []
    distinct_routers: set[str] = set()
    internal_signatures: dict[tuple, int] = {}
    external_total = 0
    for map_name in (
        MapName.EUROPE,
        MapName.WORLD,
        MapName.NORTH_AMERICA,
        MapName.ASIA_PACIFIC,
    ):
        snapshot = snapshots.get(map_name)
        if snapshot is None:
            continue
        routers, internal, external = snapshot.summary_counts()
        rows.append(
            Table1Row(
                map_name=map_name,
                routers=routers,
                internal_links=internal,
                external_links=external,
            )
        )
        distinct_routers.update(node.name for node in snapshot.routers)
        # Parallel links can share a signature within one map (duplicate
        # labels); count the per-signature maximum multiplicity across
        # maps so only *cross-map* repeats de-duplicate.
        per_map: dict[tuple, int] = {}
        for link in snapshot.internal_links:
            signature = _link_signature(link)
            per_map[signature] = per_map.get(signature, 0) + 1
        for signature, multiplicity in per_map.items():
            internal_signatures[signature] = max(
                internal_signatures.get(signature, 0), multiplicity
            )
        external_total += external
    rows.append(
        Table1Row(
            map_name=None,
            routers=len(distinct_routers),
            internal_links=sum(internal_signatures.values()),
            external_links=external_total,
        )
    )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render Table 1 the way the paper prints it."""
    lines = [
        f"{'Network Map':<15} {'OVH routers':>12} {'Internal links':>15} {'External links':>15}"
    ]
    for row in rows:
        lines.append(
            f"{row.title:<15} {row.routers:>12,} {row.internal_links:>15,} "
            f"{row.external_links:>15,}"
        )
    return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class Table2Row:
    """One map's row in Table 2."""

    map_name: MapName | None
    svg_files: int
    svg_bytes: int
    yaml_files: int
    yaml_bytes: int

    @property
    def title(self) -> str:
        return self.map_name.title if self.map_name is not None else "Total"

    @property
    def unprocessed(self) -> int:
        """SVG files that produced no YAML."""
        return self.svg_files - self.yaml_files

    @property
    def svg_gib(self) -> float:
        return self.svg_bytes / _GIB

    @property
    def yaml_gib(self) -> float:
        return self.yaml_bytes / _GIB

    @property
    def compression_factor(self) -> float:
        """How much smaller the YAMLs are than the SVGs (paper: ~8x)."""
        if self.yaml_bytes == 0:
            return 0.0
        return self.svg_bytes / self.yaml_bytes


def build_table2(
    store: DatasetStore,
    processing: dict[MapName, ProcessingStats] | None = None,
) -> list[Table2Row]:
    """Build Table 2 from a dataset store's on-disk contents."""
    rows: list[Table2Row] = []
    totals = [0, 0, 0, 0]
    for map_name in (
        MapName.EUROPE,
        MapName.WORLD,
        MapName.NORTH_AMERICA,
        MapName.ASIA_PACIFIC,
    ):
        svg_files, svg_bytes = store.file_stats(map_name, "svg")
        yaml_files, yaml_bytes = store.file_stats(map_name, "yaml")
        if svg_files == 0 and yaml_files == 0:
            continue
        rows.append(
            Table2Row(
                map_name=map_name,
                svg_files=svg_files,
                svg_bytes=svg_bytes,
                yaml_files=yaml_files,
                yaml_bytes=yaml_bytes,
            )
        )
        totals[0] += svg_files
        totals[1] += svg_bytes
        totals[2] += yaml_files
        totals[3] += yaml_bytes
    rows.append(
        Table2Row(
            map_name=None,
            svg_files=totals[0],
            svg_bytes=totals[1],
            yaml_files=totals[2],
            yaml_bytes=totals[3],
        )
    )
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Render Table 2 the way the paper prints it (sizes in GiB)."""
    lines = [
        f"{'Network Map':<15} {'# SVGs':>10} {'SVG GiB':>10} "
        f"{'# YAMLs':>10} {'YAML GiB':>10} {'Unproc.':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row.title:<15} {row.svg_files:>10,} {row.svg_gib:>10.4f} "
            f"{row.yaml_files:>10,} {row.yaml_gib:>10.4f} {row.unprocessed:>8,}"
        )
    return "\n".join(lines)
