"""Load stored datasets back as snapshot streams.

Everything in :mod:`repro.analysis` works on iterables of
:class:`~repro.topology.model.MapSnapshot`; this module supplies those
iterables from a collected dataset directory, so an analysis runs
identically on simulator output and on data read back from disk — the
workflow of a downstream user of the released dataset.

The Section 5 analyses re-read thousands of YAML files per figure, so the
loaders are tiered:

1. **Columnar index** — when the map has a fresh
   :mod:`repro.dataset.index` file, snapshots are reconstructed from its
   interned columns without parsing any YAML; results are equal to the
   YAML path, well over an order of magnitude faster.
2. **Process pool** — without an index, ``load_all(workers=N)`` fans the
   YAML deserialisation out while keeping the returned list in time
   order.  Worker requests go through
   :func:`repro.dataset.workers.resolve_workers`, so the pool is skipped
   whenever it cannot win (one effective worker, single-core machine).
3. **Serial YAML** — the always-correct fallback.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Iterator

from repro.constants import MapName
from repro.dataset.index import SnapshotIndex, fresh_index
from repro.dataset.store import DatasetStore, ShardedDatasetStore, SnapshotRef
from repro.dataset.workers import resolve_workers
from repro.errors import SchemaError
from repro.telemetry import get_registry
from repro.topology.model import MapSnapshot
from repro.yamlio.deserialize import snapshot_from_yaml

logger = logging.getLogger(__name__)


def _loaded_counter():
    """Snapshots served to callers, labelled by map and serving tier."""
    return get_registry().counter(
        "repro_snapshots_loaded_total",
        "Snapshots served to callers by source tier (index or yaml)",
    )


def _fresh_indexes(store: DatasetStore, map_name: MapName) -> list[SnapshotIndex] | None:
    """The map's fresh index set, in time order, or ``None``.

    On a :class:`~repro.dataset.store.ShardedDatasetStore` this is the
    per-day shard indexes (which partition time, so chaining them
    preserves global order); on a flat store, the monolithic index as a
    one-element list.  Any staleness reports ``None`` — fall back to YAML.
    """
    if isinstance(store, ShardedDatasetStore):
        from repro.dataset.shards import fresh_shard_indexes

        return fresh_shard_indexes(store, map_name)
    index = fresh_index(store, map_name)
    return None if index is None else [index]


def iter_snapshots(
    store: DatasetStore,
    map_name: MapName,
    start: datetime | None = None,
    end: datetime | None = None,
    on_error: Callable[[SnapshotRef, SchemaError], None] | None = None,
    use_index: bool = True,
) -> Iterator[MapSnapshot]:
    """Stream the stored YAML snapshots of one map, in time order.

    Args:
        store: the dataset directory.
        map_name: which map to read.
        start: inclusive lower bound on snapshot time.
        end: exclusive upper bound on snapshot time.
        on_error: called for unreadable files; they are skipped.  Without
            a handler, schema errors propagate.
        use_index: serve from the map's columnar index when it is fresh
            (identical results, no YAML parsing); set ``False`` to force
            the YAML path.

    Yields:
        One :class:`MapSnapshot` per readable YAML file, stamped with the
        file's timestamp (authoritative over the document's own field).
    """
    loaded = _loaded_counter()
    if use_index:
        indexes = _fresh_indexes(store, map_name)
        if indexes is not None:
            for index in indexes:
                for snapshot in _iter_from_index(store, index, start, end, on_error):
                    loaded.inc(1, map=map_name.value, source="index")
                    yield snapshot
            return
    for ref in _refs_in_window(store, map_name, start, end):
        try:
            snapshot = snapshot_from_yaml(ref.path.read_text(encoding="utf-8"))
        except SchemaError as exc:
            if on_error is None:
                raise
            on_error(ref, exc)
            continue
        snapshot.timestamp = ref.timestamp
        loaded.inc(1, map=map_name.value, source="yaml")
        yield snapshot


def latest_snapshot(
    store: DatasetStore, map_name: MapName, use_index: bool = True
) -> MapSnapshot | None:
    """The most recent *readable* stored snapshot of one map, or ``None``.

    A collection campaign can die mid-write, so the newest file on disk is
    the likeliest one to be truncated.  Matching ``iter_snapshots``'s
    ``on_error`` philosophy, unreadable trailing files are skipped (with a
    warning) and the loader walks back to the newest snapshot that parses.
    """
    loaded = _loaded_counter()
    if use_index:
        indexes = _fresh_indexes(store, map_name)
        if indexes is not None:
            for index in reversed(indexes):
                if len(index) == 0:
                    continue  # a shard of nothing but unreadable sources
                loaded.inc(1, map=map_name.value, source="index")
                return index.snapshot(len(index) - 1)
            return None
    refs = list(store.iter_refs(map_name, "yaml"))
    for ref in reversed(refs):
        try:
            snapshot = snapshot_from_yaml(ref.path.read_text(encoding="utf-8"))
        except SchemaError as exc:
            logger.warning("skipping unreadable %s: %s", ref.path.name, exc)
            continue
        snapshot.timestamp = ref.timestamp
        loaded.inc(1, map=map_name.value, source="yaml")
        return snapshot
    return None


def load_all(
    store: DatasetStore,
    map_name: MapName,
    start: datetime | None = None,
    end: datetime | None = None,
    on_error: Callable[[SnapshotRef, SchemaError], None] | None = None,
    workers: int | str | None = None,
    use_index: bool = True,
) -> list[MapSnapshot]:
    """Materialise a snapshot list (for analyses that need several passes).

    Args:
        workers: deserialise YAML files over this many worker processes
            (``"auto"``/``0`` = one per core); requests resolve through
            :func:`~repro.dataset.workers.resolve_workers`, so the pool
            is skipped when only one worker is worth running.  The
            returned list is in time order either way, and ``on_error``
            fires in that order too (with the error rebuilt from the
            worker's message).
        use_index: serve from the map's columnar index when it is fresh;
            the index path ignores ``workers`` (it is faster than any
            pool).  Results are equal to the YAML path's.
    """
    registry = get_registry()
    loaded = _loaded_counter()
    with registry.span(
        "repro_load_all", "load_all wall time", map=map_name.value
    ):
        if use_index:
            indexes = _fresh_indexes(store, map_name)
            if indexes is not None:
                snapshots = [
                    snapshot
                    for index in indexes
                    for snapshot in _iter_from_index(store, index, start, end, on_error)
                ]
                loaded.inc(len(snapshots), map=map_name.value, source="index")
                return snapshots
        effective_workers = resolve_workers(workers)
        if effective_workers <= 1:
            return list(
                iter_snapshots(
                    store, map_name, start=start, end=end, on_error=on_error,
                    use_index=False,
                )
            )
        refs = list(_refs_in_window(store, map_name, start, end))
        if not refs:
            return []
        snapshots = []
        chunksize = max(1, len(refs) // (effective_workers * 4))
        with ProcessPoolExecutor(
            max_workers=min(effective_workers, len(refs))
        ) as executor:
            # executor.map preserves input order, so the output stays sorted.
            for ref, (snapshot, error_message) in zip(
                refs,
                executor.map(
                    _deserialize_file, [str(ref.path) for ref in refs], chunksize=chunksize
                ),
            ):
                if snapshot is None:
                    exc = SchemaError(error_message)
                    if on_error is None:
                        raise exc
                    on_error(ref, exc)
                    continue
                snapshot.timestamp = ref.timestamp
                snapshots.append(snapshot)
        loaded.inc(len(snapshots), map=map_name.value, source="yaml")
        return snapshots


def _iter_from_index(
    store: DatasetStore,
    index: SnapshotIndex,
    start: datetime | None,
    end: datetime | None,
    on_error: Callable[[SnapshotRef, SchemaError], None] | None,
) -> Iterator[MapSnapshot]:
    """Replay the YAML path's exact behaviour from index columns.

    Skipped sources (files the index build could not parse) surface in
    time order just as the YAML walk would surface them: through
    ``on_error`` when a handler is given, as a raised
    :class:`~repro.errors.SchemaError` otherwise.
    """
    skipped = [
        epoch
        for epoch in sorted(index.skipped)
        if (start is None or epoch >= int(start.timestamp()))
        and (end is None or epoch < int(end.timestamp()))
    ]
    cursor = 0
    for row in index.rows_in_window(start, end):
        row_epoch = index.timestamps[row]
        while cursor < len(skipped) and skipped[cursor] < row_epoch:
            _report_skipped(store, index, skipped[cursor], on_error)
            cursor += 1
        yield index.snapshot(row)
    while cursor < len(skipped):
        _report_skipped(store, index, skipped[cursor], on_error)
        cursor += 1


def _report_skipped(
    store: DatasetStore,
    index: SnapshotIndex,
    epoch: int,
    on_error: Callable[[SnapshotRef, SchemaError], None] | None,
) -> None:
    entry = index.skipped[epoch]
    exc = SchemaError(entry.message)
    if on_error is None:
        raise exc
    timestamp = datetime.fromtimestamp(epoch, tz=timezone.utc)
    ref = SnapshotRef(
        map_name=index.map_name,
        timestamp=timestamp,
        kind="yaml",
        path=store.path_for(index.map_name, timestamp, "yaml"),
    )
    on_error(ref, exc)


def _refs_in_window(
    store: DatasetStore,
    map_name: MapName,
    start: datetime | None,
    end: datetime | None,
) -> Iterator[SnapshotRef]:
    """The map's YAML refs inside the half-open ``[start, end)`` window."""
    for ref in store.iter_refs(map_name, "yaml"):
        if start is not None and ref.timestamp < start:
            continue
        if end is not None and ref.timestamp >= end:
            continue
        yield ref


def _deserialize_file(path: str) -> tuple[MapSnapshot | None, str]:
    """Pool worker: one YAML file → (snapshot, "") or (None, error text)."""
    try:
        return snapshot_from_yaml(Path(path).read_text(encoding="utf-8")), ""
    except SchemaError as exc:
        return None, str(exc)
