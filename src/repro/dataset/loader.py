"""Load stored datasets back as snapshot streams.

Everything in :mod:`repro.analysis` works on iterables of
:class:`~repro.topology.model.MapSnapshot`; this module supplies those
iterables from a collected dataset directory, so an analysis runs
identically on simulator output and on data read back from disk — the
workflow of a downstream user of the released dataset.
"""

from __future__ import annotations

from datetime import datetime
from typing import Callable, Iterator

from repro.constants import MapName
from repro.dataset.store import DatasetStore, SnapshotRef
from repro.errors import SchemaError
from repro.topology.model import MapSnapshot
from repro.yamlio.deserialize import snapshot_from_yaml


def iter_snapshots(
    store: DatasetStore,
    map_name: MapName,
    start: datetime | None = None,
    end: datetime | None = None,
    on_error: Callable[[SnapshotRef, SchemaError], None] | None = None,
) -> Iterator[MapSnapshot]:
    """Stream the stored YAML snapshots of one map, in time order.

    Args:
        store: the dataset directory.
        map_name: which map to read.
        start: inclusive lower bound on snapshot time.
        end: exclusive upper bound on snapshot time.
        on_error: called for unreadable files; they are skipped.  Without
            a handler, schema errors propagate.

    Yields:
        One :class:`MapSnapshot` per readable YAML file, stamped with the
        file's timestamp (authoritative over the document's own field).
    """
    for ref in store.iter_refs(map_name, "yaml"):
        if start is not None and ref.timestamp < start:
            continue
        if end is not None and ref.timestamp >= end:
            continue
        try:
            snapshot = snapshot_from_yaml(ref.path.read_text(encoding="utf-8"))
        except SchemaError as exc:
            if on_error is None:
                raise
            on_error(ref, exc)
            continue
        snapshot.timestamp = ref.timestamp
        yield snapshot


def latest_snapshot(store: DatasetStore, map_name: MapName) -> MapSnapshot | None:
    """The most recent stored snapshot of one map, or ``None``."""
    refs = list(store.iter_refs(map_name, "yaml"))
    if not refs:
        return None
    last = refs[-1]
    snapshot = snapshot_from_yaml(last.path.read_text(encoding="utf-8"))
    snapshot.timestamp = last.timestamp
    return snapshot


def load_all(
    store: DatasetStore,
    map_name: MapName,
    start: datetime | None = None,
    end: datetime | None = None,
) -> list[MapSnapshot]:
    """Materialise a snapshot list (for analyses that need several passes)."""
    return list(iter_snapshots(store, map_name, start=start, end=end))
