"""Load stored datasets back as snapshot streams.

Everything in :mod:`repro.analysis` works on iterables of
:class:`~repro.topology.model.MapSnapshot`; this module supplies those
iterables from a collected dataset directory, so an analysis runs
identically on simulator output and on data read back from disk — the
workflow of a downstream user of the released dataset.

For the Section 5 analyses, which re-read thousands of YAML files per
figure, :func:`load_all` has a parallel fast path: deserialisation fans
out over a process pool while the returned list stays in time order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from datetime import datetime
from pathlib import Path
from typing import Callable, Iterator

from repro.constants import MapName
from repro.dataset.store import DatasetStore, SnapshotRef
from repro.errors import SchemaError
from repro.topology.model import MapSnapshot
from repro.yamlio.deserialize import snapshot_from_yaml


def iter_snapshots(
    store: DatasetStore,
    map_name: MapName,
    start: datetime | None = None,
    end: datetime | None = None,
    on_error: Callable[[SnapshotRef, SchemaError], None] | None = None,
) -> Iterator[MapSnapshot]:
    """Stream the stored YAML snapshots of one map, in time order.

    Args:
        store: the dataset directory.
        map_name: which map to read.
        start: inclusive lower bound on snapshot time.
        end: exclusive upper bound on snapshot time.
        on_error: called for unreadable files; they are skipped.  Without
            a handler, schema errors propagate.

    Yields:
        One :class:`MapSnapshot` per readable YAML file, stamped with the
        file's timestamp (authoritative over the document's own field).
    """
    for ref in _refs_in_window(store, map_name, start, end):
        try:
            snapshot = snapshot_from_yaml(ref.path.read_text(encoding="utf-8"))
        except SchemaError as exc:
            if on_error is None:
                raise
            on_error(ref, exc)
            continue
        snapshot.timestamp = ref.timestamp
        yield snapshot


def latest_snapshot(store: DatasetStore, map_name: MapName) -> MapSnapshot | None:
    """The most recent stored snapshot of one map, or ``None``."""
    last: SnapshotRef | None = None
    for ref in store.iter_refs(map_name, "yaml"):
        last = ref
    if last is None:
        return None
    snapshot = snapshot_from_yaml(last.path.read_text(encoding="utf-8"))
    snapshot.timestamp = last.timestamp
    return snapshot


def load_all(
    store: DatasetStore,
    map_name: MapName,
    start: datetime | None = None,
    end: datetime | None = None,
    on_error: Callable[[SnapshotRef, SchemaError], None] | None = None,
    workers: int | None = None,
) -> list[MapSnapshot]:
    """Materialise a snapshot list (for analyses that need several passes).

    Args:
        workers: deserialise YAML files over this many worker processes;
            ``None`` or ``1`` reads serially.  The returned list is in
            time order either way, and ``on_error`` fires in that order
            too (with the error rebuilt from the worker's message).
    """
    if workers is None or workers <= 1:
        return list(
            iter_snapshots(store, map_name, start=start, end=end, on_error=on_error)
        )
    refs = list(_refs_in_window(store, map_name, start, end))
    if not refs:
        return []
    snapshots: list[MapSnapshot] = []
    chunksize = max(1, len(refs) // (workers * 4))
    with ProcessPoolExecutor(max_workers=min(workers, len(refs))) as executor:
        # executor.map preserves input order, so the output stays sorted.
        for ref, (snapshot, error_message) in zip(
            refs,
            executor.map(
                _deserialize_file, [str(ref.path) for ref in refs], chunksize=chunksize
            ),
        ):
            if snapshot is None:
                exc = SchemaError(error_message)
                if on_error is None:
                    raise exc
                on_error(ref, exc)
                continue
            snapshot.timestamp = ref.timestamp
            snapshots.append(snapshot)
    return snapshots


def _refs_in_window(
    store: DatasetStore,
    map_name: MapName,
    start: datetime | None,
    end: datetime | None,
) -> Iterator[SnapshotRef]:
    """The map's YAML refs inside the half-open ``[start, end)`` window."""
    for ref in store.iter_refs(map_name, "yaml"):
        if start is not None and ref.timestamp < start:
            continue
        if end is not None and ref.timestamp >= end:
            continue
        yield ref


def _deserialize_file(path: str) -> tuple[MapSnapshot | None, str]:
    """Pool worker: one YAML file → (snapshot, "") or (None, error text)."""
    try:
        return snapshot_from_yaml(Path(path).read_text(encoding="utf-8")), ""
    except SchemaError as exc:
        return None, str(exc)
