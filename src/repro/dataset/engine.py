"""Parallel + incremental bulk-processing engine for the SVG→YAML corpus.

The paper's central workload is embarrassingly parallel: 542,049 collected
SVG files extracted into 541,813 YAML snapshots (Table 2), every file
independent of every other.  This module scales that workload in two
orthogonal ways while reproducing the serial accounting *exactly*:

* **Process-pool fan-out** — SVG refs are chunked into batches and
  dispatched to a :class:`~concurrent.futures.ProcessPoolExecutor`.  The
  worker side is the pure function
  :func:`repro.dataset.processor.process_svg_bytes` (bytes → YAML text or
  typed failure), so every result is picklable.  The parent consumes
  batches in submission order and writes the YAML files itself, which
  makes serial and parallel runs produce byte-identical YAML trees and
  identical :class:`~repro.dataset.processor.ProcessingStats` (including
  the ``failure_causes`` Counter the Table 2 breakdown needs).

* **Telemetry fan-in** — each pool task runs under a private
  :class:`~repro.telemetry.MetricsRegistry` and ships its snapshot back
  alongside the batch results; the parent merges every snapshot into the
  active registry, so a parallel run's counters (files processed/failed,
  fast-path hits, per-stage histograms) total exactly what a serial run
  over the same corpus produces.  Parent-side work adds its own series:
  ``repro_manifest_lookups_total{map,outcome}`` for the skip cache,
  ``repro_engine_batch_seconds`` for worker batch wall time, and
  ``repro_process_run_seconds{mode="parallel"}`` for the whole map.

* **Incremental manifest** — a per-map ``manifest.json`` in the
  :class:`~repro.dataset.store.DatasetStore` records, per processed SVG,
  the content hash, a cheap ``(size, mtime_ns)`` fast key, the parser
  version, and the outcome (YAML size, or the typed failure cause).
  Re-runs skip unchanged files with one dict lookup and one ``stat()`` on
  the SVG — no per-file ``exists()``/``stat()`` round-trips on the YAML
  twin — while still reporting the same stats the original run did.
  ``overwrite=True`` and :data:`~repro.parsing.pipeline.PARSER_VERSION`
  bumps invalidate the whole manifest; an edited SVG invalidates just its
  own entry.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from datetime import datetime
from pathlib import Path
from typing import Iterable, Sequence

from repro.constants import MapName
from repro.dataset.processor import ProcessingStats, file_metrics, process_svg_bytes
from repro.dataset.store import (
    DatasetStore,
    ShardedDatasetStore,
    SnapshotRef,
    atomic_write_text,
    format_timestamp,
)
from repro.dataset.workers import AUTO_WORKERS, default_workers, resolve_workers
from repro.errors import DatasetError
from repro.parsing.pipeline import PARSER_VERSION, ParseOptions, resolve_parse_options
from repro.telemetry import MetricsRegistry, get_registry, use_registry

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "Manifest",
    "ManifestEntry",
    "default_workers",
    "process_all_parallel",
    "process_map_parallel",
    "resolve_workers",
]

logger = logging.getLogger(__name__)

#: How many SVGs each pool task carries; amortises pickling and dispatch
#: overhead without starving workers at the tail of a run.
DEFAULT_CHUNK_SIZE = 16


@dataclass(slots=True)
class ManifestEntry:
    """What the manifest remembers about one processed SVG."""

    sha256: str
    size: int
    mtime_ns: int
    yaml_bytes: int | None = None
    failure: str | None = None

    def matches_stat(self, stat: os.stat_result) -> bool:
        """Cheap unchanged check — no file read, no hashing."""
        return stat.st_size == self.size and stat.st_mtime_ns == self.mtime_ns


class Manifest:
    """The per-map incremental-processing ledger.

    Serialised as JSON next to the map's ``svg/`` and ``yaml/`` subtrees::

        {
          "parser_version": 1,
          "entries": {
            "europe-20220912T000000Z": {
              "sha256": "...", "size": 126526, "mtime_ns": ...,
              "yaml_bytes": 14836, "failure": null
            }
          }
        }

    A stored ``parser_version`` different from the current
    :data:`~repro.parsing.pipeline.PARSER_VERSION` discards every entry,
    so parser changes reprocess the whole corpus cleanly.
    """

    def __init__(self, parser_version: int = PARSER_VERSION) -> None:
        self.parser_version = parser_version
        self.entries: dict[str, ManifestEntry] = {}

    @classmethod
    def load(cls, path: Path) -> "Manifest":
        """Read a manifest, tolerating absence, corruption, and version skew."""
        manifest = cls()
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return manifest
        if not isinstance(document, dict):
            return manifest
        if document.get("parser_version") != manifest.parser_version:
            logger.info(
                "manifest %s has parser version %r (current %r); reprocessing",
                path,
                document.get("parser_version"),
                manifest.parser_version,
            )
            return manifest
        for key, raw in document.get("entries", {}).items():
            try:
                manifest.entries[key] = ManifestEntry(
                    sha256=raw["sha256"],
                    size=raw["size"],
                    mtime_ns=raw["mtime_ns"],
                    yaml_bytes=raw.get("yaml_bytes"),
                    failure=raw.get("failure"),
                )
            except (KeyError, TypeError):
                continue  # one bad entry just loses its skip, not the run
        return manifest

    def save(self, path: Path) -> None:
        """Write the manifest atomically and durably.

        Write-aside + fsync + ``os.replace`` (via
        :func:`~repro.dataset.store.atomic_write_text`), so a mid-write
        kill leaves either the previous manifest or the new one — never a
        truncated file that would poison the skip cache.
        """
        document = {
            "parser_version": self.parser_version,
            "entries": {key: asdict(entry) for key, entry in self.entries.items()},
        }
        atomic_write_text(path, json.dumps(document, sort_keys=True))


@dataclass(frozen=True, slots=True)
class _WorkerResult:
    """One SVG's outcome coming back from a worker — pure data, picklable."""

    yaml_text: str | None
    failure_cause: str | None
    failure_message: str
    sha256: str
    size: int
    mtime_ns: int


def _process_batch(
    map_value: str,
    strict: bool,
    items: Sequence[tuple[str, str]],
    options: ParseOptions = ParseOptions(),
) -> tuple[list[_WorkerResult], dict]:
    """Pool worker: read, hash, and extract one batch of SVG files.

    ``items`` are ``(timestamp_iso, path)`` pairs; results come back in the
    same order, which is what lets the parent merge deterministically.
    The batch runs under a private metrics registry whose snapshot
    travels back with the results — the parent merges it, so nothing the
    workers observe (stage timings, fast-path hits, failure causes) is
    lost to process isolation.
    """
    map_name = MapName(map_value)
    results: list[_WorkerResult] = []
    local = MetricsRegistry()
    with use_registry(local):
        with local.span(
            "repro_engine_batch", "Worker batch wall time", map=map_value
        ):
            for stamp_iso, path_text in items:
                path = Path(path_text)
                data = path.read_bytes()
                stat = path.stat()
                outcome = process_svg_bytes(
                    data,
                    map_name,
                    datetime.fromisoformat(stamp_iso),
                    strict=strict,
                    options=options,
                )
                results.append(
                    _WorkerResult(
                        yaml_text=outcome.yaml_text,
                        failure_cause=outcome.failure_cause,
                        failure_message=outcome.failure_message,
                        sha256=hashlib.sha256(data).hexdigest(),
                        size=stat.st_size,
                        mtime_ns=stat.st_mtime_ns,
                    )
                )
    return results, local.snapshot()


def _chunked(refs: Sequence[SnapshotRef], size: int) -> Iterable[Sequence[SnapshotRef]]:
    for start in range(0, len(refs), size):
        yield refs[start : start + size]


def _apply_result(
    store: DatasetStore,
    manifest: Manifest,
    stats: ProcessingStats,
    ref: SnapshotRef,
    result: _WorkerResult,
) -> None:
    """Fold one worker result into the stats, the store, and the manifest."""
    entry = ManifestEntry(
        sha256=result.sha256, size=result.size, mtime_ns=result.mtime_ns
    )
    if result.yaml_text is None:
        stats.unprocessed += 1
        stats.failure_causes[result.failure_cause] += 1
        entry.failure = result.failure_cause
        logger.warning(
            "unprocessable %s (%s: %s)",
            ref.path.name,
            result.failure_cause,
            result.failure_message,
        )
    else:
        written = store.write(ref.map_name, ref.timestamp, "yaml", result.yaml_text)
        stats.processed += 1
        stats.yaml_bytes += written.size_bytes
        entry.yaml_bytes = written.size_bytes
        _, _, yaml_bytes_counter = file_metrics()
        yaml_bytes_counter.inc(written.size_bytes, map=ref.map_name.value)
    manifest.entries[format_timestamp(ref.timestamp)] = entry


def _skip_from_manifest(stats: ProcessingStats, entry: ManifestEntry) -> None:
    """Account one unchanged file without touching its YAML twin."""
    if entry.failure is not None:
        stats.unprocessed += 1
        stats.failure_causes[entry.failure] += 1
    else:
        stats.processed += 1
        stats.yaml_bytes += entry.yaml_bytes or 0


def process_map_parallel(
    store: DatasetStore,
    map_name: MapName,
    workers: int | str | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    strict: bool = False,
    overwrite: bool = False,
    use_manifest: bool = True,
    update_index: bool = True,
    options: ParseOptions | None = None,
    *,
    fast_path: bool | None = None,
) -> ProcessingStats:
    """Process one map's SVGs into YAML twins — in parallel, incrementally.

    Produces byte-identical YAML files and identical
    :class:`~repro.dataset.processor.ProcessingStats` to the serial
    :func:`~repro.dataset.processor.process_map` run over the same corpus.

    Args:
        store: dataset directory to read SVGs from and write YAMLs into.
        map_name: which map to process.
        workers: worker process count; ``None``/``"auto"``/``0`` mean one
            per core.  Requests resolve through
            :func:`~repro.dataset.workers.resolve_workers`, so one
            effective worker (including any request on a single-core
            machine) degenerates to an in-process loop — no pool spawned.
        chunk_size: SVGs per pool task.
        strict: apply the whole-map sanity checks strictly.
        overwrite: ignore the manifest and re-process every file.
        use_manifest: maintain the incremental ``manifest.json``; disable
            to mimic a stateless one-shot run.
        update_index: after processing, append the newly produced YAML
            snapshots to the map's columnar index (incrementally, like
            the manifest); ``overwrite`` rebuilds it from scratch, and a
            :data:`~repro.parsing.pipeline.PARSER_VERSION` bump discards
            it — exactly the YAML skip-cache's invalidation rules.
        options: parse configuration shipped (pickled) to every worker.
        fast_path: deprecated — use ``options=ParseOptions(fast_path=...)``.

    Returns:
        Per-map counts mirroring a Table 2 row.
    """
    opts = resolve_parse_options(options, fast_path=fast_path)
    workers = resolve_workers(workers, default=AUTO_WORKERS)
    if chunk_size < 1:
        raise DatasetError(f"chunk_size must be >= 1, got {chunk_size}")

    registry = get_registry()
    files, _, _ = file_metrics(registry)
    manifest_lookups = registry.counter(
        "repro_manifest_lookups_total",
        "Manifest skip-cache lookups by outcome (hit = file skipped)",
    )
    registry.histogram("repro_engine_batch_seconds", "Worker batch wall time")
    run_span = registry.span(
        "repro_process_run",
        "Whole-map SVG→YAML run wall time",
        map=map_name.value,
        mode="parallel",
    )
    # Materialise both outcomes so a fully-cached (or cache-less) run still
    # exports the family with explicit zeros.
    manifest_lookups.inc(0, map=map_name.value, outcome="hit")
    manifest_lookups.inc(0, map=map_name.value, outcome="miss")

    manifest_path = store.manifest_path(map_name)
    manifest = Manifest.load(manifest_path) if use_manifest else Manifest()
    if overwrite:
        manifest.entries.clear()

    stats = ProcessingStats(map_name=map_name)
    with run_span:
        pending: list[SnapshotRef] = []
        for ref in store.iter_refs(map_name, "svg"):
            entry = manifest.entries.get(format_timestamp(ref.timestamp))
            if entry is not None and entry.matches_stat(ref.path.stat()):
                _skip_from_manifest(stats, entry)
                manifest_lookups.inc(1, map=map_name.value, outcome="hit")
                files.inc(1, map=map_name.value, outcome="skipped")
                continue
            manifest_lookups.inc(1, map=map_name.value, outcome="miss")
            pending.append(ref)
        skipped = stats.total

        if pending:
            batches = list(_chunked(pending, chunk_size))
            if workers == 1:
                result_batches = (
                    _process_batch(
                        map_name.value,
                        strict,
                        [(ref.timestamp.isoformat(), str(ref.path)) for ref in batch],
                        opts,
                    )
                    for batch in batches
                )
            else:
                executor = ProcessPoolExecutor(max_workers=min(workers, len(batches)))
                futures = [
                    executor.submit(
                        _process_batch,
                        map_name.value,
                        strict,
                        [(ref.timestamp.isoformat(), str(ref.path)) for ref in batch],
                        opts,
                    )
                    for batch in batches
                ]
                result_batches = (future.result() for future in futures)
            try:
                # Submission order == ref order, so the merge is deterministic.
                for batch, (results, worker_snapshot) in zip(batches, result_batches):
                    registry.merge(worker_snapshot)
                    for ref, result in zip(batch, results):
                        _apply_result(store, manifest, stats, ref, result)
            finally:
                if workers != 1:
                    executor.shutdown()

    if use_manifest:
        manifest.save(manifest_path)
    if update_index and any(True for _ in store.iter_refs(map_name, "yaml")):
        on_error = lambda ref, exc: logger.warning(  # noqa: E731
            "not indexing unreadable %s: %s", ref.path.name, exc
        )
        if isinstance(store, ShardedDatasetStore):
            # Sharded datasets compact per-day shard indexes — O(changed
            # shards), not O(corpus) — instead of the monolithic index.
            from repro.dataset.shards import compact_map_shards  # import cycle

            compact_map_shards(
                store, map_name, rebuild=overwrite, workers=workers, on_error=on_error
            )
        else:
            from repro.dataset.index import build_index  # breaks an import cycle

            build_index(
                store,
                map_name,
                rebuild=overwrite,
                workers=workers,
                on_error=on_error,
            )
    logger.info(
        "processed %s: %d ok, %d unprocessable (%d skipped via manifest, "
        "%d workers)",
        map_name.value,
        stats.processed,
        stats.unprocessed,
        skipped,
        workers,
    )
    return stats


def process_all_parallel(
    store: DatasetStore,
    maps: Sequence[MapName] | None = None,
    workers: int | str | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    strict: bool = False,
    overwrite: bool = False,
    update_index: bool = True,
    options: ParseOptions | None = None,
    *,
    fast_path: bool | None = None,
) -> dict[MapName, ProcessingStats]:
    """Run :func:`process_map_parallel` over several maps, one shared config."""
    opts = resolve_parse_options(options, fast_path=fast_path)
    results: dict[MapName, ProcessingStats] = {}
    for map_name in maps if maps is not None else list(MapName):
        results[map_name] = process_map_parallel(
            store,
            map_name,
            workers=workers,
            chunk_size=chunk_size,
            strict=strict,
            overwrite=overwrite,
            update_index=update_index,
            options=opts,
        )
    return results
