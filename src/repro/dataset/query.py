"""Zero-copy ``mmap`` query engine over the columnar snapshot index.

:mod:`repro.dataset.index` removed YAML parsing from the read path; this
module removes *object construction*.  The paper's whole-series analyses
(load distributions, ECMP imbalance, lifetimes, evolution) reduce to
column scans, yet serving them through ``load_all`` still materialises
one ``MapSnapshot`` — dict, ``Node`` and ``Link`` objects included — per
row, which dominates at 542k snapshots / 227.93 GiB.  Here the index
file is memory-mapped and each column is exposed *in place*:

* the mapping is **shared and read-only** — many worker processes scan
  one page cache copy of ``index.bin`` with no per-process heaps, the
  design that makes an HTTP serving layer cheap under fan-out;
* every column is a **zero-copy view** over the mapping — a numpy
  ``frombuffer`` view where numpy is available, a pure-stdlib
  ``memoryview.cast`` otherwise.  Both backends implement the same scans
  and are tested against each other element for element;
* the small **scan planner** does predicate pushdown: time ranges bind
  to a row window by bisecting the timestamp column, node / link
  identity filters compare interned ids, and load thresholds compare
  the flat double columns — no snapshot is ever constructed.

Lifecycle: :func:`repro.dataset.index.build_index` replaces the file
atomically (write-aside, then rename), so an open :class:`MappedIndex`
keeps serving its *generation* even while a newer one lands on disk —
the mapped inode stays alive until the engine is closed.
:meth:`MappedIndex.check_generation` detects the supersession and raises
:class:`~repro.errors.StaleIndexError` so long-lived readers know to
reopen.  On hosts without ``mmap`` (and with ``use_mmap=False``) the
same engine runs over one plain buffered read of the file.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from importlib import import_module
from dataclasses import dataclass
from datetime import datetime
from itertools import accumulate
from pathlib import Path
from typing import Any, Iterator, Sequence

try:  # pragma: no cover - exercised only on mmap-less platforms
    _mmap: Any = import_module("mmap")
except ImportError:  # pragma: no cover
    _mmap = None

from repro.constants import MapName
from repro.dataset.index import (
    IndexLayout,
    covers_refs,
    parse_index_layout,
)
from repro.dataset.store import DatasetStore
from repro.errors import QueryError, SnapshotIndexError, StaleIndexError
from repro.parsing.pipeline import PARSER_VERSION
from repro.telemetry import get_registry

__all__ = [
    "BACKENDS",
    "ColumnBatch",
    "LinkRecord",
    "MappedIndex",
    "ScanPredicate",
    "ScanResult",
    "open_query",
    "resolve_backend",
]

#: Recognised backend requests: ``auto`` picks numpy when importable.
BACKENDS = ("auto", "numpy", "memoryview")

#: Column attributes in file order (mirrors ``index._COLUMNS``).
_COLUMN_ATTRIBUTES = (
    "timestamps",
    "source_sizes",
    "source_mtimes",
    "router_counts",
    "peering_counts",
    "link_counts",
    "router_ids",
    "peering_ids",
    "link_a_nodes",
    "link_a_labels",
    "link_b_nodes",
    "link_b_labels",
    "link_a_loads",
    "link_b_loads",
)


def resolve_backend(backend: str) -> str:
    """Resolve a backend request to the one that will actually run.

    ``"auto"`` prefers numpy (vectorised predicate masks) and falls back
    to the pure-stdlib ``memoryview`` backend when numpy is not
    importable.  Asking for ``"numpy"`` explicitly on a host without it
    is an error, not a silent downgrade.

    Raises:
        QueryError: unknown backend name, or ``"numpy"`` requested where
            numpy cannot be imported.
    """
    if backend not in BACKENDS:
        raise QueryError(
            f"unknown query backend {backend!r}; one of: {', '.join(BACKENDS)}"
        )
    if backend == "memoryview":
        return backend
    try:
        import numpy  # noqa: F401
    except ImportError:
        if backend == "numpy":
            raise QueryError(
                "the numpy query backend was requested but numpy is not "
                "importable; use backend='memoryview'"
            ) from None
        return "memoryview"
    return "numpy"


def _epoch(when: datetime) -> int:
    return int(when.timestamp())


@dataclass(frozen=True, slots=True)
class ScanPredicate:
    """What a scan should keep, evaluated directly on the flat columns.

    A link row matches when **all** of the set filters hold:

    * its snapshot timestamp lies in ``[start, end)``;
    * ``node`` (if set) names either endpoint;
    * ``link`` (if set) names both endpoints, in either orientation;
    * ``max(load_a, load_b)`` is ``>= min_load`` and ``<= max_load``
      (each bound only when set) — the threshold applies to the link's
      busier direction, the quantity the congestion analyses rank by.

    Names that were never interned simply match nothing: scanning for an
    unknown router returns an empty result, not an error.
    """

    start: datetime | None = None
    end: datetime | None = None
    node: str | None = None
    link: tuple[str, str] | None = None
    min_load: float | None = None
    max_load: float | None = None

    def __post_init__(self) -> None:
        if self.start is not None and self.end is not None and self.end < self.start:
            raise QueryError(
                f"scan window ends ({self.end.isoformat()}) before it "
                f"starts ({self.start.isoformat()})"
            )
        if self.node is not None and not self.node:
            raise QueryError("node filter must be a non-empty name")
        if self.link is not None:
            if len(self.link) != 2 or not self.link[0] or not self.link[1]:
                raise QueryError(
                    f"link filter must name two endpoints, got {self.link!r}"
                )
        for bound_name in ("min_load", "max_load"):
            bound = getattr(self, bound_name)
            if bound is not None and not 0.0 <= bound <= 100.0:
                raise QueryError(
                    f"{bound_name} must lie in [0, 100], got {bound!r}"
                )
        if (
            self.min_load is not None
            and self.max_load is not None
            and self.max_load < self.min_load
        ):
            raise QueryError(
                f"max_load {self.max_load} is below min_load {self.min_load}"
            )

    @property
    def filters_links(self) -> bool:
        """Whether any per-link filter is set (beyond the time window)."""
        return (
            self.node is not None
            or self.link is not None
            or self.min_load is not None
            or self.max_load is not None
        )


@dataclass(frozen=True)
class ColumnBatch:
    """One aligned chunk of scan matches, column by column.

    Every field has one element per matching link occurrence.  Node and
    label fields carry *interned ids* — resolve them through the
    engine's ``names`` / ``labels`` tables only where strings are
    actually needed; the whole point of the batch form is that most
    consumers (histograms, thresholds, matrices) never do.
    """

    rows: Any  #: snapshot row per match
    timestamps: Any  #: epoch seconds per match
    a_nodes: Any
    a_labels: Any
    a_loads: Any
    b_nodes: Any
    b_labels: Any
    b_loads: Any

    def __len__(self) -> int:
        return len(self.rows)


@dataclass(frozen=True, slots=True)
class LinkRecord:
    """One scan match resolved to strings — the CLI/report form.

    Constructing these is the only materialising accessor on a scan
    result; the batch/column accessors stay zero-copy.
    """

    timestamp: datetime
    node_a: str
    label_a: str
    load_a: float
    node_b: str
    label_b: str
    load_b: float


class MappedIndex:
    """One map's ``index.bin`` served as zero-copy column views.

    Columns carry the same attribute names as
    :class:`~repro.dataset.index.SnapshotIndex`, so the vectorised
    accessors in :mod:`repro.analysis.columnar` run unchanged over
    either source — in-heap arrays or this shared mapping.
    """

    timestamps: Any
    source_sizes: Any
    source_mtimes: Any
    router_counts: Any
    peering_counts: Any
    link_counts: Any
    router_ids: Any
    peering_ids: Any
    link_a_nodes: Any
    link_a_labels: Any
    link_b_nodes: Any
    link_b_labels: Any
    link_a_loads: Any
    link_b_loads: Any

    def __init__(
        self,
        buffer: Any,
        layout: IndexLayout,
        *,
        path: Path | None = None,
        backend: str = "auto",
        generation: tuple[int, int, int] | None = None,
        mapped: bool = False,
    ) -> None:
        self._buffer = buffer
        self._layout = layout
        self.path = path
        self.backend = resolve_backend(backend)
        self.generation = generation
        self.mapped = mapped
        self.map_name = layout.map_name
        self.parser_version = layout.parser_version
        self.names = layout.names
        self.labels = layout.labels
        self.skipped = layout.skipped
        self.fingerprint = layout.fingerprint
        self.closed = False
        self._name_ids: dict[str, int] | None = None
        self._link_offsets: Any = None
        if self.backend == "numpy":
            import numpy

            for attribute in _COLUMN_ATTRIBUTES:
                spec = layout.columns[attribute]
                setattr(
                    self,
                    attribute,
                    numpy.frombuffer(
                        buffer,
                        dtype=numpy.dtype(spec.typecode),
                        count=spec.count,
                        offset=spec.offset,
                    ),
                )
        else:
            view = memoryview(buffer)
            for attribute in _COLUMN_ATTRIBUTES:
                spec = layout.columns[attribute]
                setattr(
                    self, attribute, view[spec.offset : spec.end].cast(spec.typecode)
                )

    # -- opening -----------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: Path,
        *,
        backend: str = "auto",
        use_mmap: bool = True,
        verify: bool = False,
    ) -> "MappedIndex":
        """Map (or, fallback, read) one ``index.bin`` into an engine.

        Args:
            backend: ``"auto"`` / ``"numpy"`` / ``"memoryview"``.
            use_mmap: set ``False`` to force the buffered-read fallback
                (the path Windows-like hosts without a working ``mmap``
                take automatically).
            verify: also check the trailing SHA-256 — one full pass over
                the mapping, so it is opt-in; the structural layout
                checks always run.

        Raises:
            SnapshotIndexError: unreadable file, malformed layout,
                checksum mismatch (with ``verify=True``), or a file
                whose byte order is not this host's — a foreign-endian
                index cannot be viewed zero-copy and must be rebuilt
                (or read through :meth:`SnapshotIndex.load`, which
                swaps).
        """
        effective_backend = resolve_backend(backend)
        buffer: Any
        try:
            with path.open("rb") as handle:
                stat = os.fstat(handle.fileno())
                generation = (stat.st_ino, stat.st_size, stat.st_mtime_ns)
                mapped = False
                if use_mmap and _mmap is not None and stat.st_size > 0:
                    try:
                        buffer = _mmap.mmap(
                            handle.fileno(), 0, access=_mmap.ACCESS_READ
                        )
                        mapped = True
                    except (OSError, ValueError, OverflowError):
                        buffer = handle.read()
                else:
                    buffer = handle.read()
        except OSError as exc:
            raise SnapshotIndexError(f"cannot read index {path}: {exc}") from exc
        try:
            layout = parse_index_layout(buffer, source=str(path))
            if layout.byteorder != sys_byteorder():
                raise SnapshotIndexError(
                    f"index {path} was written on a {layout.byteorder}-endian "
                    f"host; zero-copy mapping needs native byte order — "
                    f"rebuild the index on this host"
                )
            if verify:
                _verify_checksum(buffer, layout, source=str(path))
        except SnapshotIndexError:
            if mapped:
                buffer.close()
            raise
        get_registry().counter(
            "repro_query_opens_total",
            "Query-engine opens by data source (mmap vs buffered read)",
        ).inc(
            1,
            map=layout.map_name.value,
            source="mmap" if mapped else "buffered",
            backend=effective_backend,
        )
        return cls(
            buffer,
            layout,
            path=path,
            backend=effective_backend,
            generation=generation,
            mapped=mapped,
        )

    def close(self) -> None:
        """Drop the column views and close the mapping.

        Views handed out by earlier scans may still reference the
        mapping; the OS keeps the pages alive until those are garbage
        collected, so closing is always safe — it just stops *new*
        scans.
        """
        if self.closed:
            return
        self.closed = True
        for attribute in _COLUMN_ATTRIBUTES:
            setattr(self, attribute, None)
        self._link_offsets = None
        buffer, self._buffer = self._buffer, None
        if self.mapped and buffer is not None:
            try:
                buffer.close()
            except BufferError:
                # Exported views (numpy arrays, memoryview casts) still
                # reference the map; the mapping is released when they go.
                pass

    def __enter__(self) -> "MappedIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- freshness / generation --------------------------------------------

    def check_generation(self) -> None:
        """Raise if the on-disk ``index.bin`` superseded this mapping.

        An incremental build replaces the file atomically; this engine
        keeps serving its own generation regardless (the mapped inode
        survives the rename), but long-lived readers poll this to know
        when to reopen.

        Raises:
            StaleIndexError: the file was replaced or removed.
            QueryError: the engine was opened from a buffer, not a path.
        """
        if self.path is None or self.generation is None:
            raise QueryError("this engine was not opened from a file path")
        try:
            stat = self.path.stat()
        except OSError as exc:
            raise StaleIndexError(
                f"index {self.path} vanished after being mapped: {exc}"
            ) from exc
        current = (stat.st_ino, stat.st_size, stat.st_mtime_ns)
        if current != self.generation:
            raise StaleIndexError(
                f"index {self.path} was rebuilt since this mapping was "
                f"opened; reopen to serve the new generation"
            )

    def fresh_for(self, refs: Sequence[Any]) -> bool:
        """Whether this generation exactly covers the given YAML refs."""
        return covers_refs(self, refs)

    # -- column geometry ----------------------------------------------------

    def __len__(self) -> int:
        self._require_open()
        return len(self.timestamps)

    def _require_open(self) -> None:
        if self.closed:
            raise QueryError("query engine is closed")

    def rows_in_window(
        self, start: datetime | None = None, end: datetime | None = None
    ) -> range:
        """Row indices whose timestamps fall inside ``[start, end)``."""
        self._require_open()
        lo = 0 if start is None else bisect_left(self.timestamps, _epoch(start))
        hi = (
            len(self.timestamps)
            if end is None
            else bisect_left(self.timestamps, _epoch(end))
        )
        return range(lo, hi)

    def timestamp_at(self, row: int) -> datetime:
        """The snapshot timestamp of one row (UTC-aware)."""
        from datetime import timezone

        self._require_open()
        return datetime.fromtimestamp(int(self.timestamps[row]), tz=timezone.utc)

    def link_offsets(self) -> Any:
        """Prefix sums of ``link_counts``: row → first link element."""
        self._require_open()
        if self._link_offsets is None:
            if self.backend == "numpy":
                import numpy

                self._link_offsets = numpy.concatenate(
                    (
                        numpy.zeros(1, dtype=numpy.int64),
                        numpy.cumsum(self.link_counts, dtype=numpy.int64),
                    )
                )
            else:
                self._link_offsets = list(accumulate(self.link_counts, initial=0))
        return self._link_offsets

    def link_slice(self, rows: range) -> tuple[int, int]:
        """The link-element slice covering a contiguous row window."""
        offsets = self.link_offsets()
        return int(offsets[rows.start]), int(offsets[rows.stop])

    def name_id(self, name: str) -> int | None:
        """Interned id of a node name, ``None`` when never observed."""
        self._require_open()
        if self._name_ids is None:
            self._name_ids = {value: i for i, value in enumerate(self.names)}
        return self._name_ids.get(name)

    # -- scanning -----------------------------------------------------------

    def scan(self, predicate: ScanPredicate | None = None) -> "ScanResult":
        """Run one predicate-pushdown scan over the mapped columns.

        Time bounds bisect the timestamp column down to a row window,
        the window binds a contiguous link-element slice through the
        prefix offsets, and the per-link filters reduce that slice to
        the matching elements — vectorised boolean masks on the numpy
        backend, a tight loop over the casts on the stdlib one.  Both
        return identical selections.
        """
        self._require_open()
        if predicate is None:
            predicate = ScanPredicate()
        registry = get_registry()
        with registry.span(
            "repro_query_scan",
            "Predicate-pushdown scan wall time",
            map=self.map_name.value,
            backend=self.backend,
        ):
            rows = self.rows_in_window(predicate.start, predicate.end)
            lo, hi = self.link_slice(rows)
            selected: Any
            if not predicate.filters_links:
                selected = range(lo, hi)
            elif self.backend == "numpy":
                selected = self._select_numpy(predicate, lo, hi)
            else:
                selected = self._select_python(predicate, lo, hi)
        registry.counter(
            "repro_query_scans_total", "Scans executed by the query engine"
        ).inc(1, map=self.map_name.value, backend=self.backend)
        registry.counter(
            "repro_query_rows_scanned_total",
            "Snapshot rows covered by query-engine scans",
        ).inc(len(rows), map=self.map_name.value)
        registry.counter(
            "repro_query_links_matched_total",
            "Link occurrences matched by query-engine scans",
        ).inc(len(selected), map=self.map_name.value)
        return ScanResult(
            index=self, predicate=predicate, rows=rows, lo=lo, hi=hi,
            selected=selected,
        )

    def _select_numpy(self, predicate: ScanPredicate, lo: int, hi: int) -> Any:
        import numpy

        a_nodes = self.link_a_nodes[lo:hi]
        b_nodes = self.link_b_nodes[lo:hi]
        mask = numpy.ones(hi - lo, dtype=bool)
        if predicate.node is not None:
            node_id = self.name_id(predicate.node)
            if node_id is None:
                return numpy.empty(0, dtype=numpy.int64)
            mask &= (a_nodes == node_id) | (b_nodes == node_id)
        if predicate.link is not None:
            first = self.name_id(predicate.link[0])
            second = self.name_id(predicate.link[1])
            if first is None or second is None:
                return numpy.empty(0, dtype=numpy.int64)
            mask &= ((a_nodes == first) & (b_nodes == second)) | (
                (a_nodes == second) & (b_nodes == first)
            )
        if predicate.min_load is not None or predicate.max_load is not None:
            peak = numpy.maximum(self.link_a_loads[lo:hi], self.link_b_loads[lo:hi])
            if predicate.min_load is not None:
                mask &= peak >= predicate.min_load
            if predicate.max_load is not None:
                mask &= peak <= predicate.max_load
        return numpy.flatnonzero(mask).astype(numpy.int64) + lo

    def _select_python(
        self, predicate: ScanPredicate, lo: int, hi: int
    ) -> list[int]:
        a_nodes = self.link_a_nodes
        b_nodes = self.link_b_nodes
        a_loads = self.link_a_loads
        b_loads = self.link_b_loads
        node_id = -1
        first = second = -1
        if predicate.node is not None:
            resolved = self.name_id(predicate.node)
            if resolved is None:
                return []
            node_id = resolved
        if predicate.link is not None:
            maybe_first = self.name_id(predicate.link[0])
            maybe_second = self.name_id(predicate.link[1])
            if maybe_first is None or maybe_second is None:
                return []
            first, second = maybe_first, maybe_second
        min_load = predicate.min_load
        max_load = predicate.max_load
        selected: list[int] = []
        for j in range(lo, hi):
            a, b = a_nodes[j], b_nodes[j]
            if node_id >= 0 and a != node_id and b != node_id:
                continue
            if first >= 0 and not (
                (a == first and b == second) or (a == second and b == first)
            ):
                continue
            if min_load is not None or max_load is not None:
                peak = a_loads[j]
                other = b_loads[j]
                if other > peak:
                    peak = other
                if min_load is not None and peak < min_load:
                    continue
                if max_load is not None and peak > max_load:
                    continue
            selected.append(j)
        return selected


def sys_byteorder() -> str:
    """This host's byte order (separated out for monkeypatched tests)."""
    import sys

    return sys.byteorder


def _verify_checksum(buffer: Any, layout: IndexLayout, source: str) -> None:
    import hashlib

    # The views must be released before raising so an mmap buffer can
    # still be closed by the caller's error path.
    with memoryview(buffer) as view:
        with view[: layout.payload_length] as payload:
            digest = hashlib.sha256(payload).digest()
        with view[layout.payload_length :] as trailer:
            recorded = bytes(trailer)
    if digest != recorded:
        raise SnapshotIndexError(f"index {source} fails its checksum")


@dataclass(frozen=True)
class ScanResult:
    """The outcome of one scan: which rows and link elements matched.

    ``selected`` holds absolute link-element indices (a ``range`` when
    no per-link filter applied — the whole-window fast path).  The
    accessors below resolve them against the engine's columns; none of
    them reconstructs a snapshot.
    """

    index: MappedIndex
    predicate: ScanPredicate
    rows: range  #: snapshot rows inside the time window
    lo: int  #: first link element of the window
    hi: int  #: one past the last link element of the window
    selected: Any  #: matching link-element indices, ascending

    def __len__(self) -> int:
        return len(self.selected)

    @property
    def snapshot_count(self) -> int:
        """Snapshot rows the scan covered (matched or not)."""
        return len(self.rows)

    def row_of(self, element: int) -> int:
        """The snapshot row one absolute link element belongs to."""
        offsets = self.index.link_offsets()
        if self.index.backend == "numpy":
            import numpy

            return int(numpy.searchsorted(offsets, element, side="right")) - 1
        return bisect_right(offsets, element) - 1

    def batches(self, size: int = 65536) -> Iterator[ColumnBatch]:
        """The matches as aligned column chunks of at most ``size``.

        With no per-link filter the chunks are pure slices of the
        mapped columns — zero-copy end to end; filtered scans gather
        the selected elements (the result set is what gets copied,
        never the corpus).
        """
        if size < 1:
            raise QueryError(f"batch size must be >= 1, got {size}")
        engine = self.index
        engine._require_open()
        selected = self.selected
        for begin in range(0, len(selected), size):
            chunk = selected[begin : begin + size]
            yield self._batch_for(chunk)

    def _batch_for(self, chunk: Any) -> ColumnBatch:
        engine = self.index
        if isinstance(chunk, range):
            gather: Any = slice(chunk.start, chunk.stop)
        elif engine.backend == "numpy":
            gather = chunk
        else:
            gather = list(chunk)
        if engine.backend == "numpy":
            import numpy

            offsets = engine.link_offsets()
            if isinstance(gather, slice):
                rows = (
                    numpy.searchsorted(
                        offsets,
                        numpy.arange(gather.start, gather.stop, dtype=numpy.int64),
                        side="right",
                    )
                    - 1
                )
                a_nodes = engine.link_a_nodes[gather]
                a_labels = engine.link_a_labels[gather]
                a_loads = engine.link_a_loads[gather]
                b_nodes = engine.link_b_nodes[gather]
                b_labels = engine.link_b_labels[gather]
                b_loads = engine.link_b_loads[gather]
            else:
                rows = numpy.searchsorted(offsets, gather, side="right") - 1
                a_nodes = engine.link_a_nodes[gather]
                a_labels = engine.link_a_labels[gather]
                a_loads = engine.link_a_loads[gather]
                b_nodes = engine.link_b_nodes[gather]
                b_labels = engine.link_b_labels[gather]
                b_loads = engine.link_b_loads[gather]
            timestamps = engine.timestamps[rows] if len(rows) else rows
            return ColumnBatch(
                rows=rows, timestamps=timestamps,
                a_nodes=a_nodes, a_labels=a_labels, a_loads=a_loads,
                b_nodes=b_nodes, b_labels=b_labels, b_loads=b_loads,
            )
        elements = list(gather) if not isinstance(gather, slice) else list(
            range(gather.start, gather.stop)
        )
        rows_list = [self.row_of(j) for j in elements]
        return ColumnBatch(
            rows=rows_list,
            timestamps=[engine.timestamps[row] for row in rows_list],
            a_nodes=[engine.link_a_nodes[j] for j in elements],
            a_labels=[engine.link_a_labels[j] for j in elements],
            a_loads=[engine.link_a_loads[j] for j in elements],
            b_nodes=[engine.link_b_nodes[j] for j in elements],
            b_labels=[engine.link_b_labels[j] for j in elements],
            b_loads=[engine.link_b_loads[j] for j in elements],
        )

    def directed_loads(self) -> list[float]:
        """Every matching load sample, both directions interleaved.

        Order matches the object path exactly: link order, ``a`` before
        ``b`` — what :mod:`repro.analysis.loads` feeds its CDFs.
        """
        out: list[float] = []
        for batch in self.batches():
            a_loads = batch.a_loads
            b_loads = batch.b_loads
            for i in range(len(batch)):
                out.append(a_loads[i])
                out.append(b_loads[i])
        return out

    def records(self) -> Iterator[LinkRecord]:
        """The matches resolved to strings, in element order."""
        engine = self.index
        names = engine.names
        labels = engine.labels
        for batch in self.batches():
            for i in range(len(batch)):
                yield LinkRecord(
                    timestamp=engine.timestamp_at(int(batch.rows[i])),
                    node_a=names[int(batch.a_nodes[i])],
                    label_a=labels[int(batch.a_labels[i])],
                    load_a=float(batch.a_loads[i]),
                    node_b=names[int(batch.b_nodes[i])],
                    label_b=labels[int(batch.b_labels[i])],
                    load_b=float(batch.b_loads[i]),
                )


def open_query(
    store: DatasetStore,
    map_name: MapName,
    *,
    backend: str = "auto",
    use_mmap: bool = True,
    require_fresh: bool = True,
) -> MappedIndex | None:
    """Open a map's index for querying, but only if it can serve truthfully.

    Mirrors :func:`repro.dataset.index.fresh_index`: a missing, corrupt,
    parser-version-skewed, or stale index comes back as ``None`` (each
    landing in ``repro_index_cache_total`` as a miss) — the caller falls
    back to the object path.  ``require_fresh=False`` skips the
    one-``stat()``-per-file freshness walk for callers that already hold
    the freshness invariant (a serving layer polling
    :meth:`MappedIndex.check_generation` between builds).
    """
    cache = get_registry().counter(
        "repro_index_cache_total",
        "Snapshot-index freshness checks by outcome (hit = index served)",
    )
    path = store.index_path(map_name)
    try:
        engine = MappedIndex.open(path, backend=backend, use_mmap=use_mmap)
    except SnapshotIndexError:
        cache.inc(1, map=map_name.value, outcome="miss")
        return None
    ok = engine.map_name == map_name and engine.parser_version == PARSER_VERSION
    if ok and require_fresh:
        ok = engine.fresh_for(list(store.iter_refs(map_name, "yaml")))
    if not ok:
        engine.close()
        cache.inc(1, map=map_name.value, outcome="miss")
        return None
    cache.inc(1, map=map_name.value, outcome="hit")
    return engine
