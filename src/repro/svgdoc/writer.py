"""Weathermap-style SVG writer.

Emits documents with the structure the paper describes: router and peering
objects are self-contained ``<g class="object...">`` groups, while the tags
of links — two ``<polygon>`` arrows followed by two ``class="labellink"``
load texts — and of link labels — a ``class="node"`` ``<rect>`` followed by
a ``class="node"`` ``<text>`` — appear *flat* at the top level, positioned
only by their 2D coordinates.  Recovering their relationships is the job of
the parsing pipeline.
"""

from __future__ import annotations

from xml.sax.saxutils import escape, quoteattr

from repro.errors import SvgError
from repro.geometry import Point, Rect


def _format_number(value: float) -> str:
    """Format a coordinate compactly (integers without a trailing ``.0``)."""
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


class WeathermapSvgWriter:
    """Incremental builder for one weathermap SVG document.

    The caller appends elements in the order PHP Weathermap lists them —
    Algorithm 1 depends on that ordering (arrows of a link are consecutive,
    loads follow their arrows, a label's text follows its box).
    """

    def __init__(self, width: float, height: float, title: str = "") -> None:
        if width <= 0 or height <= 0:
            raise SvgError(f"canvas must have positive extent, got {width}x{height}")
        self.width = width
        self.height = height
        self.title = title
        self._parts: list[str] = []
        self._pending_arrows = 0
        self._pending_loads = 0

    def add_background(self, color: str = "#f8f8f8") -> None:
        """Full-canvas background rectangle (ignored by the parser)."""
        self._parts.append(
            f'<rect class="background" x="0" y="0" '
            f'width="{_format_number(self.width)}" '
            f'height="{_format_number(self.height)}" fill="{color}"/>'
        )

    def add_comment(self, text: str) -> None:
        """An XML comment, e.g. the snapshot timestamp."""
        self._parts.append(f"<!-- {escape(text)} -->")

    def add_object(self, name: str, box: Rect, is_peering: bool) -> None:
        """A router or physical-peering white box with its name.

        Peerings render their name in upper case and routers in lower case,
        matching the map convention the paper uses to tell them apart.
        """
        kind = "peering" if is_peering else "router"
        label = name.upper() if is_peering else name.lower()
        x, y, w, h = (_format_number(v) for v in box.as_tuple())
        center = box.center
        self._parts.append(
            f'<g class="object object-{kind}">'
            f'<rect x="{x}" y="{y}" width="{w}" height="{h}" '
            f'fill="#ffffff" stroke="#000000"/>'
            f'<text x="{_format_number(center.x)}" y="{_format_number(center.y)}" '
            f'text-anchor="middle">{escape(label)}</text>'
            f"</g>"
        )

    def add_arrow(self, points: list[Point], fill: str) -> None:
        """One link arrow polygon.

        The first and last points must be the two corners of the arrow's
        basis; Algorithm 2 reconstructs the link line from basis midpoints.
        """
        if len(points) < 3:
            raise SvgError("an arrow polygon needs at least 3 points")
        if self._pending_arrows >= 2:
            raise SvgError("a link has exactly two arrows; flush loads first")
        encoded = " ".join(
            f"{_format_number(p.x)},{_format_number(p.y)}" for p in points
        )
        self._parts.append(
            f'<polygon points="{encoded}" fill={quoteattr(fill)} stroke="#404040"/>'
        )
        self._pending_arrows += 1

    def add_load_text(self, load: float, anchor: Point) -> None:
        """One direction's load percentage text (``class="labellink"``)."""
        if self._pending_arrows == 0:
            raise SvgError("load text must follow its link's arrows")
        text = f"{load:.0f}%" if load == int(load) else f"{load:.1f}%"
        self._parts.append(
            f'<text class="labellink" x="{_format_number(anchor.x)}" '
            f'y="{_format_number(anchor.y)}" text-anchor="middle" '
            f'font-size="9">{escape(text)}</text>'
        )
        self._pending_loads += 1
        if self._pending_loads == 2:
            self._pending_arrows = 0
            self._pending_loads = 0

    def add_link(
        self,
        arrows: list[tuple[list[Point], str]],
        loads: list[tuple[float, Point]],
    ) -> None:
        """One complete bidirectional link: two arrows then two load texts."""
        if len(arrows) != 2 or len(loads) != 2:
            raise SvgError("a link is two arrows and two load texts")
        for points, fill in arrows:
            self.add_arrow(points, fill)
        for load, anchor in loads:
            self.add_load_text(load, anchor)

    def add_link_label(self, text: str, box: Rect) -> None:
        """A link-end label (e.g. ``#1``): white box then its text."""
        x, y, w, h = (_format_number(v) for v in box.as_tuple())
        center = box.center
        self._parts.append(
            f'<rect class="node" x="{x}" y="{y}" width="{w}" height="{h}" '
            f'fill="#ffffff" stroke="#808080"/>'
        )
        self._parts.append(
            f'<text class="node" x="{_format_number(center.x)}" '
            f'y="{_format_number(center.y)}" text-anchor="middle" '
            f'font-size="8">{escape(text)}</text>'
        )

    def add_legend(self, scale_colors: list[tuple[str, str]]) -> None:
        """Decorative colour legend (classless tags the parser skips)."""
        y = self.height - 18
        x = 10.0
        for color, caption in scale_colors:
            self._parts.append(
                f'<rect class="legend" x="{_format_number(x)}" '
                f'y="{_format_number(y)}" width="12" height="12" fill="{color}"/>'
            )
            self._parts.append(
                f'<text class="legend" x="{_format_number(x + 16)}" '
                f'y="{_format_number(y + 10)}" font-size="9">{escape(caption)}</text>'
            )
            x += 16 + 8 * len(caption)

    def to_svg(self) -> str:
        """Serialise the document."""
        if self._pending_arrows or self._pending_loads:
            raise SvgError("document ends with an incomplete link")
        header = (
            '<?xml version="1.0" encoding="UTF-8"?>\n'
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_format_number(self.width)}" '
            f'height="{_format_number(self.height)}">'
        )
        title = f"<title>{escape(self.title)}</title>" if self.title else ""
        body = "\n".join(self._parts)
        return f"{header}\n{title}\n{body}\n</svg>\n"
