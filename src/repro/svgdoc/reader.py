"""Document-order SVG tag-stream reader.

Feeds Algorithm 1, which "iterates over SVG tags" in the order they appear in
the file.  The reader flattens the document's top level into a sequence of
:class:`~repro.svgdoc.elements.RawTag` records; router/peering groups keep
their children attached so their box and name travel together, while link
arrows, load texts, and label tags stay flat — exactly the mixed structure
the paper describes.
"""

from __future__ import annotations

import io
import re
import xml.etree.ElementTree as ElementTree
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import MalformedSvgError
from repro.svgdoc.elements import RawTag

_SVG_NAMESPACE = "{http://www.w3.org/2000/svg}"

#: A CSS-style length: a float, optionally followed by one known unit.
#: Anything else — including a mangled unit suffix like ``800pxx`` that the
#: old character-strip heuristic silently accepted — is malformed.
_DIMENSION_RE = re.compile(
    r"\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*(?:px|pt|pc|cm|mm|in|em|ex|%)?\s*$"
)


def _local_name(tag: str) -> str:
    """Strip the SVG XML namespace from a tag name."""
    if tag.startswith(_SVG_NAMESPACE):
        return tag[len(_SVG_NAMESPACE):]
    return tag


def _to_raw_tag(element: ElementTree.Element) -> RawTag:
    """Convert an ElementTree node (and its subtree) to a RawTag."""
    children = tuple(_to_raw_tag(child) for child in element)
    return RawTag(
        tag=_local_name(element.tag),
        attributes=dict(element.attrib),
        text=element.text,
        children=children,
    )


class SvgTagStream:
    """The flat tag stream of one weathermap SVG document."""

    def __init__(self, tags: Iterable[RawTag], width: float, height: float) -> None:
        self._tags = tuple(tags)
        self.width = width
        self.height = height

    def __iter__(self) -> Iterator[RawTag]:
        return iter(self._tags)

    def __len__(self) -> int:
        return len(self._tags)

    @property
    def tags(self) -> tuple[RawTag, ...]:
        """All top-level tags in document order (immutable, not a copy)."""
        return self._tags


def parse_dimension_value(raw: str) -> float:
    """Parse one CSS-style length value (``800``, ``800px``, ``100%``...).

    Raises:
        MalformedSvgError: when the value is not a number followed by at
            most one known unit — malformed suffixes must fail loudly, not
            silently mis-parse.
    """
    match = _DIMENSION_RE.match(raw)
    if match is None:
        raise MalformedSvgError(f"malformed dimension value: {raw!r}")
    return float(match.group(1))


def _parse_dimension(root: ElementTree.Element, name: str) -> float:
    """Parse the root ``width``/``height`` attribute (may carry units)."""
    raw = root.attrib.get(name, "0")
    try:
        return parse_dimension_value(raw)
    except MalformedSvgError as exc:
        raise MalformedSvgError(
            f"svg root {name} attribute malformed: {raw!r}"
        ) from exc


def load_source(source: str | Path | bytes) -> bytes | str:
    """Resolve a parse source to document data.

    A ``Path`` (or a path-looking single-line ``.svg`` string) is read from
    disk; raw bytes/text pass through.  Shared by this reader and the
    streaming fast path (:mod:`repro.parsing.stream`) so both parse the
    same document and raise the same ``OSError`` for an unreadable file.
    """
    if isinstance(source, Path):
        return source.read_bytes()
    if isinstance(source, str) and "\n" not in source and source.endswith(".svg"):
        return Path(source).read_bytes()
    return source


def read_svg_tags(source: str | Path | bytes) -> SvgTagStream:
    """Read a weathermap SVG into its flat tag stream.

    Args:
        source: a filesystem path, or the raw document bytes/text.

    Raises:
        MalformedSvgError: when the document is not well-formed XML or its
            root is not an ``<svg>`` element — the real dataset contains such
            files and they must be countable, not fatal.
    """
    data = load_source(source)

    if isinstance(data, str):
        stream: io.IOBase = io.StringIO(data)
    else:
        stream = io.BytesIO(data)

    try:
        tree = ElementTree.parse(stream)
    except ElementTree.ParseError as exc:
        raise MalformedSvgError(f"not well-formed XML: {exc}") from exc
    except (LookupError, ValueError) as exc:
        # expat surfaces a bad/unknown encoding declaration as LookupError
        # (and a few malformed prologs as ValueError), not as ParseError.
        raise MalformedSvgError(f"undecodable XML document: {exc}") from exc

    root = tree.getroot()
    if _local_name(root.tag) != "svg":
        raise MalformedSvgError(f"root element is <{_local_name(root.tag)}>, not <svg>")

    tags = [_to_raw_tag(child) for child in root]
    return SvgTagStream(
        tags=tags,
        width=_parse_dimension(root, "width"),
        height=_parse_dimension(root, "height"),
    )


def iter_svg_files(paths: Iterable[str | Path]) -> Iterator[tuple[Path, SvgTagStream]]:
    """Stream several SVG files, skipping malformed ones silently.

    Bulk processing helper used by the dataset pipeline when the caller does
    its own error accounting.
    """
    for path in paths:
        path = Path(path)
        try:
            yield path, read_svg_tags(path)
        except MalformedSvgError:
            continue
