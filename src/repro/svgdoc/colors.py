"""PHP Weathermap load-to-colour scale.

The weathermap reports each link load "explicitly with a percentage and
implicitly through its color" (Section 4).  This module reproduces the
default PHP Weathermap ``SCALE`` so rendered arrows carry the same implicit
signal, and so the parser can cross-check a percentage against its arrow
colour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SvgError


@dataclass(frozen=True, slots=True)
class ScaleBand:
    """One band of the scale: loads in ``(low, high]`` map to ``color``."""

    low: float
    high: float
    color: str


class LoadColorScale:
    """A piecewise-constant mapping from load percentage to fill colour."""

    def __init__(self, bands: list[ScaleBand], unused_color: str = "#c0c0c0") -> None:
        if not bands:
            raise SvgError("a colour scale needs at least one band")
        self._bands = sorted(bands, key=lambda band: band.low)
        self._unused_color = unused_color
        previous_high = self._bands[0].low
        for band in self._bands:
            if band.low != previous_high:
                raise SvgError(
                    f"scale bands must be contiguous, gap at {previous_high}-{band.low}"
                )
            if band.high <= band.low:
                raise SvgError(f"empty scale band {band.low}-{band.high}")
            previous_high = band.high

    @property
    def bands(self) -> list[ScaleBand]:
        """The scale bands in increasing load order."""
        return list(self._bands)

    def color_for(self, load: float) -> str:
        """Fill colour for a load percentage.

        A load of exactly 0 % renders in the 'unused' grey, matching the
        weathermap convention that "a disabled link is represented with a
        load level of 0 %".
        """
        if load < 0.0 or load > self._bands[-1].high:
            raise SvgError(f"load {load} outside scale range")
        if load == 0.0:
            return self._unused_color
        for band in self._bands:
            if band.low < load <= band.high:
                return band.color
        return self._bands[0].color

    def band_for_color(self, color: str) -> ScaleBand | None:
        """Inverse lookup: the band rendered with ``color``, if any."""
        normalized = color.lower()
        for band in self._bands:
            if band.color.lower() == normalized:
                return band
        return None

    def is_consistent(self, load: float, color: str) -> bool:
        """Whether a printed percentage agrees with its arrow colour."""
        try:
            return self.color_for(load).lower() == color.lower()
        except SvgError:
            return False


#: The default PHP Weathermap scale (weathermap.conf ``SCALE`` directives).
WEATHERMAP_SCALE = LoadColorScale(
    [
        ScaleBand(0, 1, "#ffffff"),
        ScaleBand(1, 10, "#8c00ff"),
        ScaleBand(10, 25, "#2020ff"),
        ScaleBand(25, 40, "#00c0ff"),
        ScaleBand(40, 55, "#00f000"),
        ScaleBand(55, 70, "#f0f000"),
        ScaleBand(70, 85, "#ffc000"),
        ScaleBand(85, 100, "#ff0000"),
    ]
)
