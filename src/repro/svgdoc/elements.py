"""Typed views over the raw SVG tags of a weathermap document.

Algorithm 1 of the paper dispatches on two properties of each tag: its
``class`` attribute and its tag name.  ``classify_tag`` performs exactly that
dispatch, turning a :class:`RawTag` into one of the typed element views:

* ``ObjectElement`` — a router or physical-peering white box with its name
  (``class`` starts with ``object``),
* ``ArrowElement`` — one ``polygon`` arrow, half of a bidirectional link,
* ``LoadTextElement`` — a ``labellink`` text carrying a load percentage,
* ``LabelBoxElement`` / ``LabelTextElement`` — the two tags of a link label
  (``class`` is ``node``; first the white ``rect``, then the ``text``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MalformedSvgError
from repro.geometry import Point, Rect


@dataclass(frozen=True, slots=True)
class RawTag:
    """A raw SVG tag in document order, as produced by the reader.

    ``children`` is only populated for grouped tags (router objects); links
    and labels appear flat at the top level of the document.
    """

    tag: str
    attributes: dict[str, str]
    text: str | None = None
    children: tuple["RawTag", ...] = field(default=())

    @property
    def svg_class(self) -> str:
        """The ``class`` attribute, or an empty string."""
        return self.attributes.get("class", "")

    def float_attribute(self, name: str) -> float:
        """Parse a numeric attribute, raising the paper's malformed-SVG error.

        The paper reports real files "with malformed attribute values"; every
        numeric parse funnels through here so such files fail with
        :class:`~repro.errors.MalformedSvgError` and get counted as
        unprocessed in Table 2.
        """
        value = self.attributes.get(name)
        if value is None:
            raise MalformedSvgError(f"<{self.tag}> missing attribute {name!r}")
        try:
            return float(value)
        except ValueError as exc:
            raise MalformedSvgError(
                f"<{self.tag}> attribute {name!r} has malformed value {value!r}"
            ) from exc


@dataclass(frozen=True, slots=True)
class ObjectElement:
    """A router or physical peering: a white box and a name.

    OVH routers carry lower-case names (``fra-fr5-pb6-nc5``); physical
    peerings carry upper-case names (``ARELION``).
    """

    name: str
    box: Rect

    @property
    def is_peering(self) -> bool:
        """Peerings are written in upper case on the map (Section 4)."""
        return self.name.upper() == self.name

    @property
    def is_router(self) -> bool:
        """OVH routers are written in lower case on the map."""
        return not self.is_peering


@dataclass(frozen=True, slots=True)
class ArrowElement:
    """One arrow polygon: half of a bidirectional link.

    The renderer emits arrow polygons with the two base corners first and
    last in the point list, so ``base_midpoint`` recovers "the middle
    coordinates of the basis" that Algorithm 2 builds the link line from.
    """

    points: tuple[Point, ...]
    fill: str = ""

    @property
    def base_midpoint(self) -> Point:
        """Midpoint of the arrow's rear edge (its basis)."""
        return self.points[0].midpoint(self.points[-1])

    @property
    def tip(self) -> Point:
        """The arrow head tip (the point farthest from the basis)."""
        base = self.base_midpoint
        return max(self.points, key=base.distance_to)


@dataclass(frozen=True, slots=True)
class LoadTextElement:
    """A ``labellink`` text tag carrying one direction's load percentage."""

    raw_text: str
    anchor: Point

    @property
    def load(self) -> float:
        """The percentage as a float in [0, 100].

        Raises:
            MalformedSvgError: when the text is not ``<number>%``.
        """
        text = self.raw_text.strip()
        if not text.endswith("%"):
            raise MalformedSvgError(f"load text {self.raw_text!r} lacks a % suffix")
        try:
            return float(text[:-1].strip())
        except ValueError as exc:
            raise MalformedSvgError(
                f"load text {self.raw_text!r} is not a percentage"
            ) from exc


@dataclass(frozen=True, slots=True)
class LabelBoxElement:
    """The white rectangle of a link label (first tag of the pair)."""

    box: Rect


@dataclass(frozen=True, slots=True)
class LabelTextElement:
    """The text of a link label, e.g. ``#1`` (second tag of the pair)."""

    text: str


ClassifiedElement = (
    ObjectElement | ArrowElement | LoadTextElement | LabelBoxElement | LabelTextElement
)


def _parse_points(raw: str) -> tuple[Point, ...]:
    """Parse an SVG ``points`` attribute into Point tuples."""
    cleaned = raw.replace(",", " ").split()
    if len(cleaned) < 6 or len(cleaned) % 2 != 0:
        raise MalformedSvgError(f"polygon points attribute malformed: {raw!r}")
    try:
        values = [float(token) for token in cleaned]
    except ValueError as exc:
        raise MalformedSvgError(f"polygon points attribute malformed: {raw!r}") from exc
    return tuple(Point(values[i], values[i + 1]) for i in range(0, len(values), 2))


def _rect_from_tag(tag: RawTag) -> Rect:
    """Build a Rect from a ``<rect>`` tag's geometry attributes."""
    return Rect(
        tag.float_attribute("x"),
        tag.float_attribute("y"),
        tag.float_attribute("width"),
        tag.float_attribute("height"),
    )


def _parse_object(tag: RawTag) -> ObjectElement:
    """Parse a router/peering group: one ``<rect>`` box and one ``<text>`` name."""
    box: Rect | None = None
    name: str | None = None
    for child in tag.children:
        if child.tag == "rect" and box is None:
            box = _rect_from_tag(child)
        elif child.tag == "text" and name is None:
            name = (child.text or "").strip()
    if box is None or not name:
        raise MalformedSvgError(
            "object group lacks elements (no box or name) — cannot extract router"
        )
    return ObjectElement(name=name, box=box)


def classify_tag(tag: RawTag) -> ClassifiedElement | None:
    """Dispatch one raw tag exactly as Algorithm 1 does.

    Returns ``None`` for tags the algorithm ignores (background, legend,
    decorations), letting the caller simply skip them.
    """
    svg_class = tag.svg_class
    if svg_class.startswith("object"):
        return _parse_object(tag)
    if tag.tag == "polygon":
        return ArrowElement(
            points=_parse_points(tag.attributes.get("points", "")),
            fill=tag.attributes.get("fill", ""),
        )
    if svg_class == "labellink":
        if tag.tag != "text":
            raise MalformedSvgError("labellink class on a non-text tag")
        return LoadTextElement(
            raw_text=tag.text or "",
            anchor=Point(tag.float_attribute("x"), tag.float_attribute("y")),
        )
    if svg_class == "node":
        if tag.tag == "rect":
            return LabelBoxElement(box=_rect_from_tag(tag))
        if tag.tag == "text":
            return LabelTextElement(text=(tag.text or "").strip())
        raise MalformedSvgError(f"node class on unexpected tag <{tag.tag}>")
    return None
