"""SVG document layer.

The OVH Network Weathermap publishes its maps as SVG files whose tags are
"not all hierarchically organized": routers are self-contained groups, but
link arrows, load percentages, and link labels appear as a flat sequence of
tags positioned in the 2D image space.  This package provides:

* :mod:`repro.svgdoc.colors` — the PHP-Weathermap load-to-colour scale,
* :mod:`repro.svgdoc.elements` — typed views over raw SVG tags,
* :mod:`repro.svgdoc.writer` — a builder emitting weathermap-style SVGs,
* :mod:`repro.svgdoc.reader` — a document-order tag-stream reader feeding
  Algorithm 1.
"""

from repro.svgdoc.colors import LoadColorScale, WEATHERMAP_SCALE
from repro.svgdoc.elements import (
    ArrowElement,
    LabelBoxElement,
    LabelTextElement,
    LoadTextElement,
    ObjectElement,
    RawTag,
    classify_tag,
)
from repro.svgdoc.reader import SvgTagStream, read_svg_tags
from repro.svgdoc.writer import WeathermapSvgWriter

__all__ = [
    "LoadColorScale",
    "WEATHERMAP_SCALE",
    "ArrowElement",
    "LabelBoxElement",
    "LabelTextElement",
    "LoadTextElement",
    "ObjectElement",
    "RawTag",
    "classify_tag",
    "SvgTagStream",
    "read_svg_tags",
    "WeathermapSvgWriter",
]
