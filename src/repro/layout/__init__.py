"""Map layout and SVG rendering.

Turns a :class:`~repro.topology.model.MapSnapshot` into a weathermap SVG
with the same geometric conventions the parsing pipeline must invert:

* routers/peerings as white boxes placed by site clusters,
* each link as two arrow polygons whose bases sit just outside the endpoint
  boxes, so the line through the base midpoints crosses both boxes,
* per-end link labels centred on that line a few pixels past each base,
* per-direction load texts near the link middle.

The renderer is the adversary of Algorithm 2: everything it draws must be
recoverable from coordinates alone.
"""

from repro.layout.placement import NodePlacement, NodePlacer
from repro.layout.renderer import MapRenderer, render_snapshot

__all__ = ["NodePlacement", "NodePlacer", "MapRenderer", "render_snapshot"]
