"""Node placement: white boxes on the canvas, clustered by site.

Sites sit on a ring around the canvas centre; a site's routers cluster near
its anchor; peerings are pushed outward past the router they attach to, as
on the real map where peering boxes line the borders.  Placement is
deterministic and collision-free: boxes are nudged along a spiral until
they stop overlapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.geometry import Point, Rect
from repro.rng import substream
from repro.topology.model import NodeKind

#: Pixels of clearance kept between any two boxes — generous, because two
#: *connected* boxes need room for two arrows and two labels between them.
_BOX_MARGIN = 95.0

#: Vertical extent of every node box.
BOX_HEIGHT = 26.0

#: Pixels of box-perimeter length reserved per link endpoint.  Wide enough
#: that the label boxes of adjacent endpoints can never reach each other's
#: arrow bases, which keeps Algorithm 2's nearest-label attribution exact.
ENDPOINT_SPACING = 20.0


@dataclass(frozen=True, slots=True)
class NodePlacement:
    """A placed node: its white box on the canvas."""

    name: str
    kind: NodeKind
    box: Rect

    @property
    def center(self) -> Point:
        return self.box.center


def _box_width(name: str, total_endpoints: int) -> float:
    """Box width: room for the name and for every link endpoint.

    Link endpoints are spread along the whole box perimeter with
    :data:`ENDPOINT_SPACING` between them (plus 30 % slack so endpoints can
    stay near the direction they face), so the perimeter — hence the width,
    the height being fixed — grows with the node's degree.
    """
    text_width = 18.0 + 6.2 * len(name)
    required_perimeter = 1.3 * ENDPOINT_SPACING * total_endpoints
    endpoint_width = required_perimeter / 2.0 - BOX_HEIGHT
    return max(60.0, text_width, endpoint_width)


class NodePlacer:
    """Places every node of one map on a canvas, once."""

    def __init__(self, map_title: str, seed: int = 0) -> None:
        self._map_title = map_title
        self._rng = substream("placement", map_title, seed)
        self._placements: dict[str, NodePlacement] = {}
        self._site_anchor: dict[str, Point] = {}
        self._site_members: dict[str, int] = {}
        self.width = 0.0
        self.height = 0.0

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def plan(
        self,
        routers: list[tuple[str, str, int]],
        peerings: list[tuple[str, str, int]],
    ) -> None:
        """Place all nodes.

        Args:
            routers: ``(name, site, max_side_endpoints)`` per router.
            peerings: ``(name, attached_router_site, max_side_endpoints)``
                per peering.
        """
        sites = sorted({site for _, site, _ in routers})
        if not sites:
            raise SimulationError("cannot lay out a map with no routers")

        node_count = len(routers) + len(peerings)
        self.width = max(1600.0, 360.0 * math.sqrt(node_count) + 600.0)
        self.height = self.width * 0.68
        center = Point(self.width / 2.0, self.height / 2.0)
        ring_radius = min(self.width, self.height) * 0.33

        for index, site in enumerate(sites):
            angle = 2.0 * math.pi * index / len(sites)
            self._site_anchor[site] = center + Point(
                ring_radius * math.cos(angle), ring_radius * math.sin(angle)
            )
            self._site_members[site] = 0

        for name, site, endpoints in routers:
            self._place_router(name, site, endpoints)
        for name, site, endpoints in peerings:
            self._place_peering(name, site, endpoints)

    def _spiral_place(self, start: Point, width: float, height: float) -> Rect:
        """First non-overlapping box centred near ``start`` on a spiral."""
        for step in range(900):
            radius = 14.0 * step
            angle = step * 2.399963  # golden angle keeps the spiral even
            candidate_center = start + Point(
                radius * math.cos(angle), radius * math.sin(angle)
            )
            x = min(max(candidate_center.x, width / 2 + 10), self.width - width / 2 - 10)
            y = min(max(candidate_center.y, height / 2 + 10), self.height - height / 2 - 10)
            candidate = Rect.from_center(Point(x, y), width, height)
            inflated = candidate.expanded(_BOX_MARGIN / 2.0)
            if not any(
                inflated.intersects_rect(existing.box.expanded(_BOX_MARGIN / 2.0))
                for existing in self._placements.values()
            ):
                return candidate
        raise SimulationError("canvas too crowded: could not place a node box")

    def _place_router(self, name: str, site: str, endpoints: int) -> None:
        anchor = self._site_anchor.get(site)
        if anchor is None:
            anchor = Point(self.width / 2.0, self.height / 2.0)
        rank = self._site_members.get(site, 0)
        self._site_members[site] = rank + 1
        jitter = Point(
            self._rng.uniform(-30.0, 30.0) + 70.0 * (rank % 3 - 1),
            self._rng.uniform(-24.0, 24.0) + 52.0 * (rank // 3 % 3 - 1),
        )
        box = self._spiral_place(anchor + jitter, _box_width(name, endpoints), BOX_HEIGHT)
        self._placements[name] = NodePlacement(name=name, kind=NodeKind.ROUTER, box=box)

    def _place_peering(self, name: str, site: str, endpoints: int) -> None:
        anchor = self._site_anchor.get(site, Point(self.width / 2.0, self.height / 2.0))
        center = Point(self.width / 2.0, self.height / 2.0)
        if anchor.distance_to(center) < 1.0:
            outward = Point(1.0, 0.0)
        else:
            outward = (anchor - center).normalized()
        start = anchor + outward * (130.0 + self._rng.uniform(0.0, 90.0))
        box = self._spiral_place(start, _box_width(name, endpoints), BOX_HEIGHT)
        self._placements[name] = NodePlacement(name=name, kind=NodeKind.PEERING, box=box)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def placement(self, name: str) -> NodePlacement:
        """The placed box of one node."""
        try:
            return self._placements[name]
        except KeyError as exc:
            raise SimulationError(f"node {name!r} was never placed") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._placements

    def placements(self) -> list[NodePlacement]:
        """All placements, in insertion order."""
        return list(self._placements.values())
