"""Link geometry: perimeter endpoint allocation and arrow polygons.

Every link is drawn as two meeting arrows along the straight segment
between one attachment point on each endpoint's box perimeter.  Parallel
links get adjacent attachment points, so their lines run parallel — and the
line through the two arrow *bases* (placed a few pixels outside the boxes)
always crosses both boxes, which is the invariant Algorithm 2 relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.geometry import Point, Rect, Segment
from repro.layout.placement import ENDPOINT_SPACING

#: Gap between a box edge and the arrow base just outside it.
BASE_GAP = 5.0

#: Distance from the arrow base to the centre of the link-end label box.
#: Nearly zero: the label sits *on* the base, so the link end's own label is
#: always its nearest intersecting label (distance ~0) during attribution.
LABEL_OFFSET = 1.0

#: Half-width of the arrow shaft.
SHAFT_HALF_WIDTH = 3.5

#: Length and half-width of the arrow head.
HEAD_LENGTH = 9.0
HEAD_HALF_WIDTH = 7.0

#: Distance from the link middle to each direction's load-text anchor.
LOAD_TEXT_OFFSET = 26.0


def perimeter_length(box: Rect) -> float:
    """Total perimeter of a box."""
    return 2.0 * (box.width + box.height)


def perimeter_point(box: Rect, position: float) -> Point:
    """Point at curvilinear ``position`` along the perimeter.

    Position 0 is the middle of the right edge, increasing clockwise in
    screen coordinates (right → bottom → left → top).
    """
    total = perimeter_length(box)
    s = position % total
    half_h = box.height / 2.0
    half_w = box.width / 2.0
    # Right edge, lower half.
    if s < half_h:
        return Point(box.right, box.center.y + s)
    s -= half_h
    # Bottom edge, right to left.
    if s < box.width:
        return Point(box.right - s, box.bottom)
    s -= box.width
    # Left edge, bottom to top.
    if s < box.height:
        return Point(box.left, box.bottom - s)
    s -= box.height
    # Top edge, left to right.
    if s < box.width:
        return Point(box.left + s, box.top)
    s -= box.width
    # Right edge, upper half.
    return Point(box.right, box.top + s)


def perimeter_position_towards(box: Rect, target: Point) -> float:
    """Curvilinear position where the ray from centre to ``target`` exits."""
    center = box.center
    direction = target - center
    if direction.norm() < 1e-9:
        return 0.0
    half_w = box.width / 2.0
    half_h = box.height / 2.0
    t_x = half_w / abs(direction.x) if direction.x != 0 else math.inf
    t_y = half_h / abs(direction.y) if direction.y != 0 else math.inf
    t = min(t_x, t_y)
    exit_point = center + direction * t
    if t_x <= t_y:
        if direction.x > 0:  # right edge
            if exit_point.y >= center.y:
                return exit_point.y - center.y
            return perimeter_length(box) - (center.y - exit_point.y)
        # left edge
        return half_h + box.width + (box.bottom - exit_point.y)
    if direction.y > 0:  # bottom edge (screen y grows downwards)
        return half_h + (box.right - exit_point.x)
    # top edge
    return half_h + box.width + box.height + (exit_point.x - box.left)


def relax_positions(ideal: list[float], total: float, gap: float = ENDPOINT_SPACING) -> list[float]:
    """Spread positions on a circle of circumference ``total`` with a
    minimum ``gap``, staying close to the ideal positions.

    Returns relaxed positions in the same order as the input.
    """
    count = len(ideal)
    if count == 0:
        return []
    if count * gap > total:
        gap = total / count  # box sizing should prevent this; degrade gently
    order = sorted(range(count), key=lambda index: ideal[index])
    positions = [ideal[index] for index in order]
    for i in range(1, count):
        if positions[i] < positions[i - 1] + gap:
            positions[i] = positions[i - 1] + gap
    # Wraparound: the whole chain must leave a gap between its last and
    # first positions on the circle.  When the forward pass overflows,
    # fall back to even spacing anchored at the first position — always
    # valid because count * gap <= total.
    if count > 1 and positions[-1] - positions[0] > total - gap:
        start = positions[0]
        spacing = total / count
        positions = [start + index * spacing for index in range(count)]
    result = [0.0] * count
    for rank, index in enumerate(order):
        result[index] = positions[rank]
    return result


@dataclass(frozen=True, slots=True)
class LinkGeometry:
    """Everything the renderer draws for one link."""

    #: Arrow polygon for the a→b direction (base corners first and last).
    arrow_ab: tuple[Point, ...]
    #: Arrow polygon for the b→a direction.
    arrow_ba: tuple[Point, ...]
    #: Label box and text at the a end.
    label_box_a: Rect
    #: Label box and text at the b end.
    label_box_b: Rect
    #: Anchor of the a→b load percentage text.
    load_anchor_ab: Point
    #: Anchor of the b→a load percentage text.
    load_anchor_ba: Point
    #: The base midpoints (for tests: the line Algorithm 2 reconstructs).
    base_a: Point
    base_b: Point


def _arrow_polygon(base: Point, tip: Point) -> tuple[Point, ...]:
    """A 7-point arrow from ``base`` to ``tip``, base corners first/last."""
    segment = Segment(base, tip)
    direction = segment.direction
    normal = direction.perpendicular()
    shoulder = tip - direction * HEAD_LENGTH
    return (
        base + normal * SHAFT_HALF_WIDTH,
        shoulder + normal * SHAFT_HALF_WIDTH,
        shoulder + normal * HEAD_HALF_WIDTH,
        tip,
        shoulder - normal * HEAD_HALF_WIDTH,
        shoulder - normal * SHAFT_HALF_WIDTH,
        base - normal * SHAFT_HALF_WIDTH,
    )


def label_box_for(text: str, center: Point) -> Rect:
    """The white box of a link-end label, sized to its text.

    Kept small so a label never strays onto the parallel neighbour's line
    (links are spaced :data:`~repro.layout.placement.ENDPOINT_SPACING`
    apart).
    """
    width = 4.2 * len(text) + 3.0
    height = 8.0
    return Rect.from_center(center, width, height)


def build_link_geometry(
    attach_a: Point,
    attach_b: Point,
    label_a: str,
    label_b: str,
) -> LinkGeometry:
    """Geometry of one link between two attachment points.

    Raises:
        SimulationError: when the attachment points are too close to draw
            a two-arrow link between them.
    """
    if attach_a.distance_to(attach_b) < 2 * (BASE_GAP + LABEL_OFFSET + HEAD_LENGTH) + 8:
        raise SimulationError("endpoints too close to draw a link")
    segment = Segment(attach_a, attach_b)
    direction = segment.direction
    middle = segment.midpoint

    base_a = attach_a + direction * BASE_GAP
    base_b = attach_b - direction * BASE_GAP
    tip_ab = middle - direction * 1.0
    tip_ba = middle + direction * 1.0

    label_center_a = base_a + direction * LABEL_OFFSET
    label_center_b = base_b - direction * LABEL_OFFSET

    normal = direction.perpendicular()
    load_anchor_ab = middle - direction * LOAD_TEXT_OFFSET + normal * 10.0
    load_anchor_ba = middle + direction * LOAD_TEXT_OFFSET - normal * 10.0

    return LinkGeometry(
        arrow_ab=_arrow_polygon(base_a, tip_ab),
        arrow_ba=_arrow_polygon(base_b, tip_ba),
        label_box_a=label_box_for(label_a, label_center_a),
        label_box_b=label_box_for(label_b, label_center_b),
        load_anchor_ab=load_anchor_ab,
        load_anchor_ba=load_anchor_ba,
        base_a=base_a,
        base_b=base_b,
    )
