"""The map renderer: snapshot → weathermap SVG.

Produces documents with the exact structure the paper's parsing pipeline
expects — flat consecutive arrow pairs followed by their two load texts,
label box/text pairs, self-contained object groups — positioned so the
geometric attribution of Algorithm 2 can invert them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.geometry import Point
from repro.layout.arrows import (
    LinkGeometry,
    build_link_geometry,
    perimeter_length,
    perimeter_point,
    perimeter_position_towards,
    relax_positions,
)
from repro.layout.placement import NodePlacer
from repro.svgdoc.colors import WEATHERMAP_SCALE, LoadColorScale
from repro.svgdoc.writer import WeathermapSvgWriter
from repro.topology.model import Link, MapSnapshot


def _default_site_of(name: str) -> str:
    """Fallback site extractor: the prefix of an OVH-style router name."""
    return name.split("-", 1)[0]


@dataclass(frozen=True, slots=True)
class RenderedLink:
    """A link together with the geometry it was drawn with (for tests)."""

    link: Link
    geometry: LinkGeometry


class MapRenderer:
    """Renders snapshots of one map with a stable node layout.

    The layout is computed from the first snapshot rendered and reused for
    nodes already seen, so consecutive snapshots of the same map keep their
    boxes in place — like the real weathermap, where only loads change
    between five-minute updates.
    """

    def __init__(
        self,
        site_of=None,
        scale: LoadColorScale = WEATHERMAP_SCALE,
        seed: int = 0,
    ) -> None:
        """Create a renderer.

        Args:
            site_of: optional ``name -> site`` callable used to cluster
                router boxes; defaults to the router-name prefix.
            scale: load-to-colour scale for arrow fills.
            seed: placement randomisation seed.
        """
        self._site_of = site_of if site_of is not None else _default_site_of
        self._scale = scale
        self._seed = seed
        self._placer: NodePlacer | None = None
        self._placed_names: set[str] = set()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    def _ensure_layout(self, snapshot: MapSnapshot) -> NodePlacer:
        """Place any node of ``snapshot`` that has no box yet."""
        degrees: dict[str, int] = defaultdict(int)
        for link in snapshot.links:
            for endpoint in link.nodes:
                degrees[endpoint] += 1

        peering_site: dict[str, str] = {}
        for link in snapshot.external_links:
            for name in link.nodes:
                node = snapshot.nodes[name]
                if node.is_peering and name not in peering_site:
                    other = link.a.node if link.b.node == name else link.b.node
                    peering_site[name] = self._site_of(other)

        routers = [
            (node.name, self._site_of(node.name), degrees[node.name])
            for node in snapshot.routers
        ]
        peerings = [
            (node.name, peering_site.get(node.name, "unknown"), degrees[node.name])
            for node in snapshot.peerings
        ]

        if self._placer is None:
            placer = NodePlacer(snapshot.map_name.value, seed=self._seed)
            placer.plan(routers, peerings)
            self._placer = placer
            self._placed_names = {entry[0] for entry in routers + peerings}
            return placer

        placer = self._placer
        for name, site, endpoints in routers:
            if name not in self._placed_names:
                placer._place_router(name, site, endpoints)
                self._placed_names.add(name)
        for name, site, endpoints in peerings:
            if name not in self._placed_names:
                placer._place_peering(name, site, endpoints)
                self._placed_names.add(name)
        return placer

    def _attach_points(
        self, snapshot: MapSnapshot, placer: NodePlacer
    ) -> dict[tuple[int, str], Point]:
        """Attachment point for every link end, keyed by (link index, end).

        Ends of the same node are spread along its box perimeter, each as
        close as the spacing allows to the direction of its far end.
        """
        requests: dict[str, list[tuple[int, str, float]]] = defaultdict(list)
        for index, link in enumerate(snapshot.links):
            box_a = placer.placement(link.a.node).box
            box_b = placer.placement(link.b.node).box
            requests[link.a.node].append(
                (index, "a", perimeter_position_towards(box_a, box_b.center))
            )
            requests[link.b.node].append(
                (index, "b", perimeter_position_towards(box_b, box_a.center))
            )

        attach: dict[tuple[int, str], Point] = {}
        for node_name, entries in requests.items():
            box = placer.placement(node_name).box
            relaxed = relax_positions([ideal for _, _, ideal in entries], perimeter_length(box))
            for (index, end, _), position in zip(entries, relaxed):
                point = perimeter_point(box, position)
                # Pull the attachment 2 px inside the box: the link line
                # must cross the box *interior*, not graze its boundary,
                # or coordinate rounding could detach it (Algorithm 2
                # tests line/box intersection exactly).
                inward = (box.center - point)
                if inward.norm() > 1e-9:
                    point = point + inward.normalized() * 2.0
                attach[(index, end)] = point
        return attach

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_with_geometry(
        self, snapshot: MapSnapshot
    ) -> tuple[str, list[RenderedLink]]:
        """Render and also return per-link drawing geometry (for tests)."""
        placer = self._ensure_layout(snapshot)
        attach = self._attach_points(snapshot, placer)

        writer = WeathermapSvgWriter(
            width=placer.width,
            height=placer.height,
            title=f"{snapshot.map_name.title} backbone — {snapshot.timestamp.isoformat()}",
        )
        writer.add_background()
        writer.add_comment(f"snapshot {snapshot.timestamp.isoformat()}")
        writer.add_legend(
            [(band.color, f"{band.low:g}-{band.high:g}%") for band in self._scale.bands]
        )

        rendered: list[RenderedLink] = []
        failures: list[str] = []
        for index, link in enumerate(snapshot.links):
            try:
                geometry = build_link_geometry(
                    attach[(index, "a")],
                    attach[(index, "b")],
                    link.a.label,
                    link.b.label,
                )
            except SimulationError as exc:
                failures.append(f"{link.a.node}->{link.b.node}: {exc}")
                continue
            writer.add_link(
                arrows=[
                    (list(geometry.arrow_ab), self._scale.color_for(link.a.load)),
                    (list(geometry.arrow_ba), self._scale.color_for(link.b.load)),
                ],
                loads=[
                    (link.a.load, geometry.load_anchor_ab),
                    (link.b.load, geometry.load_anchor_ba),
                ],
            )
            writer.add_link_label(link.a.label, geometry.label_box_a)
            writer.add_link_label(link.b.label, geometry.label_box_b)
            rendered.append(RenderedLink(link=link, geometry=geometry))
        if failures:
            raise SimulationError(
                f"could not draw {len(failures)} links: {failures[:3]}"
            )

        for node in list(snapshot.routers) + list(snapshot.peerings):
            placement = placer.placement(node.name)
            writer.add_object(node.name, placement.box, is_peering=node.is_peering)

        return writer.to_svg(), rendered

    def render(self, snapshot: MapSnapshot) -> str:
        """Render one snapshot to an SVG document string."""
        svg, _ = self.render_with_geometry(snapshot)
        return svg


def render_snapshot(snapshot: MapSnapshot, site_of=None, seed: int = 0) -> str:
    """One-shot convenience: render a single snapshot to SVG."""
    return MapRenderer(site_of=site_of, seed=seed).render(snapshot)
