"""repro — reproduction of the OVH Weather dataset paper (IMC '22).

The library rebuilds the paper's whole stack:

* a deterministic **backbone simulator** standing in for the live OVH
  Network Weathermap (:mod:`repro.simulation`),
* the **SVG renderer** that draws weathermap documents
  (:mod:`repro.layout`),
* the paper's **extraction pipeline** — Algorithms 1 and 2 plus sanity
  checks (:mod:`repro.parsing`),
* the **dataset substrate** — collection, storage, cataloguing, YAML
  processing (:mod:`repro.dataset`, :mod:`repro.yamlio`),
* a synthetic **PeeringDB** (:mod:`repro.peeringdb`),
* an always-on **telemetry registry** — counters, histograms, spans,
  Prometheus/JSON export (:mod:`repro.telemetry`),
* the **analysis library** regenerating every table and figure
  (:mod:`repro.analysis`).

Quickstart::

    from repro import BackboneSimulator, MapName, REFERENCE_DATE
    from repro.layout import render_snapshot
    from repro.parsing import parse_svg

    simulator = BackboneSimulator()
    snapshot = simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)
    svg = render_snapshot(snapshot)
    parsed = parse_svg(svg, MapName.EUROPE, snapshot.timestamp)
    assert parsed.snapshot.summary_counts() == snapshot.summary_counts()

Everything listed in ``__all__`` is the **stable public surface**; it
imports lazily (PEP 562), so ``import repro`` stays cheap — pulling in
:class:`BackboneSimulator` does not drag the analysis stack along.
Names living outside ``__all__`` (and anything underscore-prefixed) are
internal and may change between releases; see the README's
"Public vs internal API" section.
"""

from __future__ import annotations

__version__ = "1.3.0"

#: name → (module, attribute) for every lazily exported public name.
_EXPORTS: dict[str, tuple[str, str]] = {
    # constants
    "COLLECTION_START": ("repro.constants", "COLLECTION_START"),
    "MapName": ("repro.constants", "MapName"),
    "REFERENCE_DATE": ("repro.constants", "REFERENCE_DATE"),
    "SNAPSHOT_INTERVAL": ("repro.constants", "SNAPSHOT_INTERVAL"),
    # simulation
    "BackboneSimulator": ("repro.simulation", "BackboneSimulator"),
    "SimulationConfig": ("repro.simulation", "SimulationConfig"),
    "default_config": ("repro.simulation", "default_config"),
    # topology model
    "Link": ("repro.topology.model", "Link"),
    "LinkEnd": ("repro.topology.model", "LinkEnd"),
    "MapSnapshot": ("repro.topology.model", "MapSnapshot"),
    "Node": ("repro.topology.model", "Node"),
    "NodeKind": ("repro.topology.model", "NodeKind"),
    # parsing pipeline
    "ParseOptions": ("repro.parsing.pipeline", "ParseOptions"),
    "parse_svg": ("repro.parsing.pipeline", "parse_svg"),
    "parse_svg_file": ("repro.parsing.pipeline", "parse_svg_file"),
    # dataset substrate
    "DatasetStore": ("repro.dataset.store", "DatasetStore"),
    "InMemoryStore": ("repro.dataset.store", "InMemoryStore"),
    "ShardedDatasetStore": ("repro.dataset.store", "ShardedDatasetStore"),
    "StorageBackend": ("repro.dataset.store", "StorageBackend"),
    "open_store": ("repro.dataset.store", "open_store"),
    "load_all": ("repro.dataset.loader", "load_all"),
    "iter_snapshots": ("repro.dataset.loader", "iter_snapshots"),
    "latest_snapshot": ("repro.dataset.loader", "latest_snapshot"),
    "process_map": ("repro.dataset.processor", "process_map"),
    "process_svg_bytes": ("repro.dataset.processor", "process_svg_bytes"),
    "process_map_parallel": ("repro.dataset.engine", "process_map_parallel"),
    "validate_dataset": ("repro.dataset.validate", "validate_dataset"),
    # zero-copy query engine
    "MappedIndex": ("repro.dataset.query", "MappedIndex"),
    "ScanPredicate": ("repro.dataset.query", "ScanPredicate"),
    "ScanResult": ("repro.dataset.query", "ScanResult"),
    "open_query": ("repro.dataset.query", "open_query"),
    "open_sharded_query": ("repro.dataset.shards", "open_sharded_query"),
    "compact_map_shards": ("repro.dataset.shards", "compact_map_shards"),
    "resolve_read_handle": ("repro.dataset.handles", "resolve_read_handle"),
    # http read api
    "ServeOptions": ("repro.server", "ServeOptions"),
    "ServerConfig": ("repro.server", "ServerConfig"),
    "WeatherServer": ("repro.server", "WeatherServer"),
    "GenerationWatcher": ("repro.server", "GenerationWatcher"),
    "create_asgi_app": ("repro.server", "create_asgi_app"),
    "create_server": ("repro.server", "create_server"),
    "serve": ("repro.server", "serve"),
    # ingestion daemon
    "IngestConfig": ("repro.dataset.ingest", "IngestConfig"),
    "IngestDaemon": ("repro.dataset.ingest", "IngestDaemon"),
    "resume_ingest": ("repro.dataset.ingest", "resume_ingest"),
    # yaml twins
    "snapshot_from_yaml": ("repro.yamlio.deserialize", "snapshot_from_yaml"),
    "snapshot_to_yaml": ("repro.yamlio.serialize", "snapshot_to_yaml"),
    # telemetry
    "MetricsRegistry": ("repro.telemetry", "MetricsRegistry"),
    "get_registry": ("repro.telemetry", "get_registry"),
    "use_registry": ("repro.telemetry", "use_registry"),
    "snapshot_to_prometheus": ("repro.telemetry", "snapshot_to_prometheus"),
    # runtime lock sanitizer
    "install_sanitizer": ("repro.devtools.sanitizer", "install_sanitizer"),
    "uninstall_sanitizer": ("repro.devtools.sanitizer", "uninstall_sanitizer"),
}

__all__ = sorted([*_EXPORTS, "__version__"])


def __getattr__(name: str):
    """Resolve a public name on first touch (PEP 562 lazy export)."""
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(module_name), attribute)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
