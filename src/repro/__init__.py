"""repro — reproduction of the OVH Weather dataset paper (IMC '22).

The library rebuilds the paper's whole stack:

* a deterministic **backbone simulator** standing in for the live OVH
  Network Weathermap (:mod:`repro.simulation`),
* the **SVG renderer** that draws weathermap documents
  (:mod:`repro.layout`),
* the paper's **extraction pipeline** — Algorithms 1 and 2 plus sanity
  checks (:mod:`repro.parsing`),
* the **dataset substrate** — collection, storage, cataloguing, YAML
  processing (:mod:`repro.dataset`, :mod:`repro.yamlio`),
* a synthetic **PeeringDB** (:mod:`repro.peeringdb`),
* the **analysis library** regenerating every table and figure
  (:mod:`repro.analysis`).

Quickstart::

    from repro import BackboneSimulator, MapName, REFERENCE_DATE
    from repro.layout import render_snapshot
    from repro.parsing import parse_svg

    simulator = BackboneSimulator()
    snapshot = simulator.snapshot(MapName.EUROPE, REFERENCE_DATE)
    svg = render_snapshot(snapshot)
    parsed = parse_svg(svg, MapName.EUROPE, snapshot.timestamp)
    assert parsed.snapshot.summary_counts() == snapshot.summary_counts()
"""

from repro.constants import (
    COLLECTION_START,
    MapName,
    REFERENCE_DATE,
    SNAPSHOT_INTERVAL,
)
from repro.simulation import BackboneSimulator, SimulationConfig, default_config
from repro.topology.model import Link, LinkEnd, MapSnapshot, Node, NodeKind

__version__ = "1.0.0"

__all__ = [
    "COLLECTION_START",
    "MapName",
    "REFERENCE_DATE",
    "SNAPSHOT_INTERVAL",
    "BackboneSimulator",
    "SimulationConfig",
    "default_config",
    "Link",
    "LinkEnd",
    "MapSnapshot",
    "Node",
    "NodeKind",
    "__version__",
]
