"""Render metrics snapshots as structured JSON or Prometheus text.

Both exporters work from the plain snapshot dict
(:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot`), never from
live instruments — the same artefact ``--metrics-out`` writes, a worker
ships to its parent, and ``repro-weather metrics`` reads back.  The
Prometheus renderer follows the text exposition format 0.0.4: ``# HELP``
/ ``# TYPE`` headers, escaped label values, cumulative ``_bucket``
series with an explicit ``+Inf`` bound, and ``_sum`` / ``_count``
companions per histogram series.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.errors import TelemetryError
from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "load_metrics_file",
    "read_snapshot_file",
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "write_metrics_file",
]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """A sample value: integral floats lose the trailing ``.0``."""
    if value != value:
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    """A ``le`` bucket bound, rendered stably (``0.25``, ``1``, ``+Inf``)."""
    if bound == math.inf:
        return "+Inf"
    if float(bound).is_integer():
        return str(int(bound))
    return repr(float(bound))


def _label_text(pairs: list, extra: tuple[tuple[str, str], ...] = ()) -> str:
    """``{a="x",le="0.5"}`` or the empty string for an unlabelled series."""
    rendered = [
        f'{name}="{_escape_label(str(value))}"' for name, value in pairs
    ]
    rendered.extend(f'{name}="{_escape_label(value)}"' for name, value in extra)
    return "{" + ",".join(rendered) + "}" if rendered else ""


def snapshot_to_prometheus(snapshot: dict) -> str:
    """Render one metrics snapshot in Prometheus text exposition format."""
    _check_version(snapshot)
    lines: list[str] = []
    for entry in snapshot.get("metrics", []):
        name = entry["name"]
        kind = entry["kind"]
        help_text = entry.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            bounds = [float(bound) for bound in entry["buckets"]]
            for raw_key, value in entry["series"]:
                cumulative = 0
                for bound, count in zip(
                    bounds + [math.inf], value["counts"]
                ):
                    cumulative += count
                    labels = _label_text(
                        raw_key, extra=(("le", _format_bound(bound)),)
                    )
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                base = _label_text(raw_key)
                lines.append(f"{name}_sum{base} {_format_value(value['sum'])}")
                lines.append(f"{name}_count{base} {cumulative}")
        elif kind in ("counter", "gauge"):
            for raw_key, value in entry["series"]:
                lines.append(
                    f"{name}{_label_text(raw_key)} {_format_value(float(value))}"
                )
        else:
            raise TelemetryError(f"metric {name!r} has unknown kind {kind!r}")
    return "\n".join(lines) + "\n" if lines else ""


def snapshot_to_json(snapshot: dict) -> str:
    """Render one metrics snapshot as stable, human-diffable JSON."""
    _check_version(snapshot)
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def _check_version(snapshot: dict) -> None:
    if not isinstance(snapshot, dict):
        raise TelemetryError("metrics snapshot is not a JSON object")
    version = snapshot.get("version")
    if version != MetricsRegistry.SNAPSHOT_VERSION:
        raise TelemetryError(
            f"unsupported metrics snapshot version {version!r} "
            f"(expected {MetricsRegistry.SNAPSHOT_VERSION})"
        )


def write_metrics_file(path: str | Path, registry: MetricsRegistry) -> int:
    """Dump a registry snapshot as JSON; returns the byte count."""
    text = snapshot_to_json(registry.snapshot())
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    data = text.encode("utf-8")
    path.write_bytes(data)
    return len(data)


def read_snapshot_file(path: str | Path) -> dict:
    """Read a ``--metrics-out`` artefact back, validating its shape."""
    try:
        snapshot = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise TelemetryError(f"cannot read metrics file {path}: {exc}") from exc
    _check_version(snapshot)
    return snapshot


def load_metrics_file(path: str | Path) -> MetricsRegistry:
    """Rebuild a registry from a ``--metrics-out`` artefact."""
    registry = MetricsRegistry()
    registry.merge(read_snapshot_file(path))
    return registry
