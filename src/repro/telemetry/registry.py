"""Instruments and the thread-safe metrics registry.

The design follows the Prometheus client-library data model — counters,
gauges, and fixed-bucket histograms, each fanning out into labelled
series — restricted to what the reproduction's hot paths need:

* **cheap writes** — one dict lookup plus one lock acquisition per
  update, so instrumenting a 50 files/s pipeline costs well under the
  2% overhead budget the throughput benchmark enforces;
* **picklable snapshots** — :meth:`MetricsRegistry.snapshot` produces a
  plain JSON-safe dict, which is how worker processes ship their counts
  back to the parent for :meth:`MetricsRegistry.merge`;
* **zero dependencies** — stdlib only, like the rest of the library.

A process-wide registry is always active (:func:`get_registry`);
instrumented modules write to whatever registry is active at call time,
which is what lets pool workers swap in a private registry per batch
(:func:`use_registry`) and tests isolate themselves, and lets the
benchmark price the subsystem by swapping in a :class:`NullRegistry`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

from repro.errors import TelemetryError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Default histogram bounds (seconds): spans range from sub-millisecond
#: pipeline stages to multi-second whole-map runs.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: A labelled series key: label pairs sorted by name, hashable.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    """Normalise a label set into a hashable, order-independent key."""
    if not labels:
        return ()
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class Instrument:
    """Shared shell of every metric: a name, help text, labelled series."""

    kind = "untyped"

    __slots__ = ("name", "help", "_lock", "_series")

    def __init__(self, name: str, help: str = "") -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise TelemetryError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: dict[LabelKey, object] = {}  # repro: guarded-by[_lock]

    def series(self) -> dict[LabelKey, object]:
        """A point-in-time copy of every labelled series."""
        with self._lock:
            return dict(self._series)


class Counter(Instrument):
    """A monotonically increasing count (events, files, bytes)."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``.

        ``inc(0, **labels)`` is meaningful: it materialises the series at
        zero, so exported reports show the instrument even before the
        first event (cache *misses* exist even when every lookup hit).
        """
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one labelled series (0 when never touched)."""
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every labelled series."""
        with self._lock:
            return float(sum(self._series.values()))


class Gauge(Instrument):
    """A value that can go both ways (queue depth, pool width)."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))


class _HistogramSeries:
    """One labelled series of a histogram: per-bucket counts + sum."""

    __slots__ = ("counts", "sum")

    def __init__(self, slots: int) -> None:
        self.counts = [0] * slots  # one per bound, plus the +Inf overflow
        self.sum = 0.0

    def copy(self) -> "_HistogramSeries":
        twin = _HistogramSeries(len(self.counts))
        twin.counts = list(self.counts)
        twin.sum = self.sum
        return twin


class Histogram(Instrument):
    """Fixed-bucket distribution (durations, sizes).

    Buckets follow Prometheus ``le`` semantics: an observation lands in
    the first bucket whose upper bound is >= the value, with a final
    implicit ``+Inf`` bucket.  Counts are stored per bucket (not
    cumulative); the exporters cumulate at render time.
    """

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name} buckets must be strictly increasing"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        slot = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets) + 1
                )
            series.counts[slot] += 1
            series.sum += value

    def count(self, **labels: object) -> int:
        """Observations recorded in one labelled series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return 0 if series is None else sum(series.counts)

    def total_seconds(self, **labels: object) -> float:
        """Sum of observed values in one labelled series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return 0.0 if series is None else series.sum

    def series(self) -> dict[LabelKey, _HistogramSeries]:
        with self._lock:
            return {key: series.copy() for key, series in self._series.items()}


class Span:
    """Context manager charging its wall time to a histogram series."""

    __slots__ = ("_histogram", "_labels", "_start", "elapsed")

    def __init__(self, histogram: Histogram, labels: dict[str, object]) -> None:
        self._histogram = histogram
        self._labels = labels
        self.elapsed = 0.0

    def __enter__(self) -> "Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = perf_counter() - self._start
        self._histogram.observe(self.elapsed, **self._labels)


class MetricsRegistry:
    """A named collection of instruments, safe to share across threads.

    Instruments are get-or-create by name — calling :meth:`counter` twice
    with the same name returns the same object, so call sites don't need
    module-level instrument singletons.  Asking for an existing name with
    a different kind (or different histogram buckets) raises
    :class:`~repro.errors.TelemetryError` rather than silently splitting
    the data.
    """

    #: Bumped when the snapshot schema changes shape.
    SNAPSHOT_VERSION = 1

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Instrument] = {}  # repro: guarded-by[_lock]

    # -- instrument access -------------------------------------------------

    def _get_or_create(
        self, cls: type, name: str, help: str, **extra: object
    ) -> Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, help, **extra)
                self._instruments[name] = instrument
        if not isinstance(instrument, cls):
            raise TelemetryError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        if extra:
            bounds = tuple(float(bound) for bound in extra["buckets"])
            if instrument.buckets != bounds:
                raise TelemetryError(
                    f"histogram {name!r} already registered with different buckets"
                )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def span(self, name: str, help: str = "", **labels: object) -> Span:
        """Time a block into the histogram ``<name>_seconds``::

            with registry.span("repro_index_build", map="europe"):
                ...
        """
        return Span(self.histogram(f"{name}_seconds", help), labels)

    def instruments(self) -> list[Instrument]:
        """Every registered instrument, sorted by name."""
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def get(self, name: str) -> Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    def reset(self) -> None:
        """Drop every instrument (tests and fresh CLI runs)."""
        with self._lock:
            self._instruments.clear()

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-safe, picklable view of every instrument and series.

        The schema is what ``--metrics-out`` writes and what
        ``repro-weather metrics`` reads back::

            {"version": 1,
             "metrics": [
               {"name": ..., "kind": "counter", "help": ...,
                "series": [[[["map", "europe"]], 12.0], ...]},
               {"name": ..., "kind": "histogram", "buckets": [...],
                "series": [[[], {"counts": [...], "sum": 0.8}], ...]}]}
        """
        metrics = []
        for instrument in self.instruments():
            entry: dict = {
                "name": instrument.name,
                "kind": instrument.kind,
                "help": instrument.help,
            }
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
                entry["series"] = [
                    [
                        [list(pair) for pair in key],
                        {"counts": list(series.counts), "sum": series.sum},
                    ]
                    for key, series in sorted(instrument.series().items())
                ]
            else:
                entry["series"] = [
                    [[list(pair) for pair in key], value]
                    for key, value in sorted(instrument.series().items())
                ]
            metrics.append(entry)
        return {"version": self.SNAPSHOT_VERSION, "metrics": metrics}

    def merge(self, snapshot: "MetricsRegistry | dict") -> None:
        """Fold another registry (or its snapshot dict) into this one.

        Counters and histograms add; gauges take the incoming value
        (last write wins — the natural semantics for "current" values
        arriving from a worker).  Unknown instruments are created with
        the snapshot's kind, help, and buckets, so merging into an empty
        registry reproduces the source exactly.
        """
        if isinstance(snapshot, MetricsRegistry):
            snapshot = snapshot.snapshot()
        version = snapshot.get("version")
        if version != self.SNAPSHOT_VERSION:
            raise TelemetryError(
                f"cannot merge metrics snapshot version {version!r} "
                f"(expected {self.SNAPSHOT_VERSION})"
            )
        for entry in snapshot.get("metrics", []):
            name = entry["name"]
            kind = entry["kind"]
            help_text = entry.get("help", "")
            if kind == "counter":
                counter = self.counter(name, help_text)
                for raw_key, value in entry["series"]:
                    labels = {pair[0]: pair[1] for pair in raw_key}
                    counter.inc(float(value), **labels)
            elif kind == "gauge":
                gauge = self.gauge(name, help_text)
                for raw_key, value in entry["series"]:
                    labels = {pair[0]: pair[1] for pair in raw_key}
                    gauge.set(float(value), **labels)
            elif kind == "histogram":
                histogram = self.histogram(
                    name, help_text, buckets=tuple(entry["buckets"])
                )
                slots = len(histogram.buckets) + 1
                for raw_key, value in entry["series"]:
                    key = _label_key({pair[0]: pair[1] for pair in raw_key})
                    counts = list(value["counts"])
                    if len(counts) != slots:
                        raise TelemetryError(
                            f"histogram {name!r} snapshot has {len(counts)} "
                            f"buckets, expected {slots}"
                        )
                    with histogram._lock:
                        series = histogram._series.get(key)
                        if series is None:
                            series = histogram._series[key] = _HistogramSeries(
                                slots
                            )
                        for slot, count in enumerate(counts):
                            series.counts[slot] += count
                        series.sum += float(value["sum"])
            else:
                raise TelemetryError(
                    f"metric {name!r} has unknown kind {kind!r}"
                )


class _NullSpan:
    __slots__ = ("elapsed",)

    def __enter__(self) -> "_NullSpan":
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float, **labels: object) -> None:
        pass

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float, **labels: object) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """A registry that records nothing.

    Swapped in (``use_registry(NullRegistry())``) to measure what the
    telemetry itself costs — the benchmark's with/without-sink comparison
    — or to switch the subsystem off outright.
    """

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(_NullCounter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(_NullGauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(_NullHistogram, name, help, buckets=buckets)

    def span(self, name: str, help: str = "", **labels: object) -> _NullSpan:
        return _NullSpan()


#: The process-wide registry every instrumented module writes to.
_ACTIVE = MetricsRegistry()
_ACTIVE_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The currently active registry."""
    return _ACTIVE


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the active one; returns the previous."""
    global _ACTIVE
    if not isinstance(registry, MetricsRegistry):
        raise TelemetryError("set_registry expects a MetricsRegistry")
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Swap the active registry for the duration of a block.

    Pool workers run each batch under a private registry this way, then
    ship ``registry.snapshot()`` back for the parent to merge.
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
