"""repro.telemetry — stdlib-only metrics for the processing pipeline.

The paper's Table 2 is an operational report — files collected,
processed, and failed per map.  This package makes that report (and the
perf trajectory guarding it) a first-class, always-on output of every
run instead of an ad-hoc struct bolted onto one code path:

* :class:`MetricsRegistry` holds thread-safe :class:`Counter`,
  :class:`Gauge`, and fixed-bucket :class:`Histogram` instruments plus
  lightweight :meth:`~MetricsRegistry.span` timers;
* worker processes run under a private registry
  (:func:`use_registry`) and return
  :meth:`~MetricsRegistry.snapshot` dicts for the parent to
  :meth:`~MetricsRegistry.merge`, so parallel totals equal serial
  totals;
* snapshots export as structured JSON (:func:`snapshot_to_json`) and
  Prometheus text exposition (:func:`snapshot_to_prometheus`), surfaced
  by ``repro-weather metrics`` and ``--metrics-out``.

Telemetry never changes outputs — YAML bytes and index contents are
identical with the subsystem swapped for a :class:`NullRegistry` — and
stays within the <=2% overhead budget the throughput benchmark enforces
(see ``docs/observability.md`` for the instrument catalogue).
"""

from repro.telemetry.export import (
    load_metrics_file,
    read_snapshot_file,
    snapshot_to_json,
    snapshot_to_prometheus,
    write_metrics_file,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "load_metrics_file",
    "read_snapshot_file",
    "set_registry",
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "use_registry",
    "write_metrics_file",
]
